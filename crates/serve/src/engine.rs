//! The serving engine: durable state, epoch-swapped results, a streaming
//! ingest pipeline, and request handling — everything except sockets.
//!
//! # Data directory
//!
//! ```text
//! <dir>/snapshot.<E>.gs    GraphDb snapshot at epoch E (GraphStore)
//! <dir>/patterns.<E>.pat   P(D) at epoch E, for warm restarts
//! <dir>/journal.wal        group-committed update journal (WAL)
//! <dir>/meta.json          commit record naming the current pair
//! ```
//!
//! The **epoch** of a result is the sequence number of the last update
//! window folded into it; epoch 0 is the freshly mined snapshot. On boot
//! the engine mines the snapshot (warm-started from its pattern file),
//! replays the journal, and serves from an [`Arc`]-swapped
//! [`ResultEpoch`] — readers grab the current `Arc` and never block
//! behind a writer.
//!
//! # Streaming ingest
//!
//! Updates flow through a pipeline (see `docs/SERVICE.md`):
//!
//! 1. **Admission** (under the queue lock): the window is
//!    [coalesced](crate::ingest::coalesce_window), dry-run validated
//!    against the *tail mirror* — the database with every admitted
//!    window applied — applied to the tail, and handed to the WAL with
//!    its sequence number assigned. Admission is refused with
//!    `backpressure` when `max_pending` windows are already waiting.
//! 2. **Durability** (outside the lock): the submitter blocks on the
//!    [`GroupCommitJournal`]'s shared fsync barrier; concurrent windows
//!    share one fsync.
//! 3. **Application**: a dedicated applier thread folds durable windows
//!    into the mining state strictly in sequence order, re-mining on the
//!    shared `graphmine-exec` pool, and swaps one [`ResultEpoch`] per
//!    window. Readers are served by the worker pool and never wait on a
//!    re-mine.
//!
//! An `ack: applied` update (the default) is acknowledged after its
//! epoch is visible; an `ack: durable` update is acknowledged at the
//! fsync barrier, with application bounded by `max_pending`. Either
//! way a crash (or [`kill -9`]) after the ack recovers the window:
//! frames are journaled in sequence order, so recovery replays exactly
//! a clean prefix covering every acknowledged window.
//!
//! A clean stop drains the pipeline, folds the journal into a fresh
//! snapshot, and truncates it. The snapshot and pattern files are
//! epoch-named and `meta.json` — renamed into place — is the commit
//! point, so a crash *during* the stop leaves either the old consistent
//! pair or the new one. Journal batches with `seq <= base_epoch` are
//! already folded into the committed snapshot and are skipped on
//! replay, which makes the journal truncation pure garbage collection.
//!
//! [`kill -9`]: crate::ServerHandle::abort

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use graphmine_core::{Executor, IncPartMiner, PartMiner, PartMinerConfig, PartMinerState};
use graphmine_graph::dfscode::min_dfs_code;
use graphmine_graph::pattern_io::{read_patterns, write_patterns};
use graphmine_graph::{
    apply_all, DbUpdate, DfsCode, EmbeddingStore, Graph, GraphDb, GraphId, PatternSet, Support,
    DEFAULT_EMBEDDING_BUDGET,
};
use graphmine_storage::{GraphStore, GroupCommitJournal, UpdateJournal};
use graphmine_telemetry::{Counter, JsonValue, RunReport, Telemetry};
use parking_lot::{Mutex, RwLock};
use rustc_hash::FxHashMap;

use crate::ingest::{coalesce_window, IngestConfig, IngestQueue, WindowTracker};
use crate::protocol::{error_response, ok_response, pattern_to_json, AckMode, Request};

/// Engine configuration. `min_support` and `k` are only honored when the
/// data directory is fresh; an existing snapshot pins both (a serving
/// result is only incremental against the threshold it was mined at).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Absolute minimum support of the maintained result.
    pub min_support: Support,
    /// Number of partition units (PartMiner `k`).
    pub k: usize,
    /// Mine units on threads during boot/update re-mines.
    pub parallel: bool,
    /// Buffer-pool pages for the snapshot store and the journal.
    pub pool_pages: usize,
    /// Byte budget for per-query embedding lists on the support path.
    pub embedding_budget: usize,
    /// Streaming-ingest knobs (staleness bound, coalescing).
    pub ingest: IngestConfig,
    /// Gids this shard owns, for owner-restricted counts (`None` =
    /// single-process mode, every gid owned). The router's gathered
    /// sums are exact because owner sets are disjoint across shards.
    pub owned: Option<Vec<GraphId>>,
    /// Sliding-window retention: keep only the newest `N` ingest windows
    /// live; once an older window falls past the horizon the engine
    /// synthesizes its inverse batch, journals it as a tagged WAL frame,
    /// and folds it through the incremental miner. `None` = evolving
    /// mode, every admitted window lives forever. Not persisted: a clean
    /// stop freezes the surviving windows into the snapshot (they become
    /// base data) and retention restarts over windows admitted since.
    pub window: Option<usize>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            min_support: 2,
            k: 4,
            parallel: false,
            pool_pages: 64,
            embedding_budget: DEFAULT_EMBEDDING_BUDGET,
            ingest: IngestConfig::default(),
            owned: None,
            window: None,
        }
    }
}

/// How a `support` query was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupportSource {
    /// The pattern is frequent: answered from the warm result `P(D)`.
    Patterns,
    /// Counted exactly by the embedding-list engine.
    Embeddings,
    /// Counted exactly by backtracking isomorphism search.
    Search,
}

impl SupportSource {
    /// Stable identifier used on the wire.
    pub fn name(self) -> &'static str {
        match self {
            SupportSource::Patterns => "patterns",
            SupportSource::Embeddings => "embeddings",
            SupportSource::Search => "search",
        }
    }

    fn counter(self) -> Counter {
        match self {
            SupportSource::Patterns => Counter::SupportFromPatterns,
            SupportSource::Embeddings => Counter::SupportFromEmbeddings,
            SupportSource::Search => Counter::SupportFromSearch,
        }
    }
}

/// One immutable generation of serving state. Readers hold an `Arc` to
/// it for the duration of a request, so an update installing the next
/// epoch never invalidates an answer in flight.
pub struct ResultEpoch {
    /// Journal sequence number of the last batch folded in (0 = snapshot).
    pub epoch: u64,
    /// The database at this epoch.
    pub db: Arc<GraphDb>,
    /// `P(D)` at this epoch.
    pub patterns: Arc<PatternSet>,
}

impl ResultEpoch {
    fn new(epoch: u64, db: GraphDb, patterns: PatternSet) -> Self {
        ResultEpoch { epoch, db: Arc::new(db), patterns: Arc::new(patterns) }
    }

    /// Exact support of `pattern` in this epoch's database, cheapest
    /// source first: the frequent set, then embedding lists, then plain
    /// isomorphism search.
    ///
    /// This is a pure computation against the epoch's immutable data —
    /// memoization lives in [`ServeEngine::support_of`], keyed by epoch
    /// id, so a memo can never answer for the wrong generation.
    pub fn support_of(
        &self,
        pattern: &Graph,
        tel: &Telemetry,
        budget: usize,
    ) -> (Support, SupportSource) {
        let code = min_dfs_code(pattern);
        let (support, source) = self.support_of_code(&code, tel, budget);
        tel.counters().bump(source.counter());
        (support, source)
    }

    /// Counting core shared by [`ResultEpoch::support_of`] and the
    /// engine-level memo; bumps no source counters.
    fn support_of_code(
        &self,
        code: &DfsCode,
        tel: &Telemetry,
        budget: usize,
    ) -> (Support, SupportSource) {
        if let Some(s) = self.patterns.support(code) {
            return (s, SupportSource::Patterns);
        }
        match EmbeddingStore::new(&self.db, budget).support(code, tel.counters()) {
            Some((s, _gids)) => (s, SupportSource::Embeddings),
            None => (graphmine_graph::iso::support(&self.db, code), SupportSource::Search),
        }
    }
}

/// What an acknowledged update window did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateSummary {
    /// Durable journal sequence number (= the new epoch).
    pub seq: u64,
    /// Patterns that stayed frequent.
    pub uf: usize,
    /// Patterns that fell out of the frequent set.
    pub fi: usize,
    /// Patterns that became frequent.
    pub if_new: usize,
    /// Size of the new `P(D)`.
    pub pattern_count: usize,
}

/// A durability acknowledgement from [`ServeEngine::submit_window`]: the
/// window survives any crash, but may not be folded into the served
/// epoch yet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamAck {
    /// Durable journal sequence number of the window.
    pub seq: u64,
    /// Windows (including this one) awaiting application at ack time.
    pub pending: usize,
}

/// Why an update window was not acknowledged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// Shed by the staleness bound: `pending` windows already await
    /// application. Retry after backing off; nothing was admitted.
    Backpressure {
        /// Acked-but-unapplied windows at shed time.
        pending: usize,
    },
    /// The window failed validation; nothing was journaled and the
    /// served state is unchanged.
    Rejected(String),
    /// The pipeline failed (journal or apply error) — the engine no
    /// longer accepts updates.
    Failed(String),
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::Backpressure { pending } => {
                write!(f, "backpressure: {pending} windows pending")
            }
            UpdateError::Rejected(msg) => write!(f, "{msg}"),
            UpdateError::Failed(msg) => write!(f, "ingest pipeline failed: {msg}"),
        }
    }
}

/// What [`ServeEngine::boot`] found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BootReport {
    /// Whether an existing snapshot was loaded (vs a fresh directory).
    pub from_snapshot: bool,
    /// Journal batches replayed on top of the snapshot.
    pub replayed: usize,
    /// The epoch the engine is serving after recovery.
    pub epoch: u64,
}

struct EngineInner {
    state: PartMinerState,
}

/// State shared between request workers, the applier thread, and the
/// WAL committer.
struct EngineShared {
    tel: Telemetry,
    started: Instant,
    dir: PathBuf,
    min_support: Support,
    k: usize,
    embedding_budget: usize,
    pool_pages: usize,
    ingest_cfg: IngestConfig,
    /// Sliding-window retention horizon (`None` = evolving mode).
    window: Option<usize>,
    current: RwLock<Arc<ResultEpoch>>,
    inner: Mutex<EngineInner>,
    /// Memoized exact supports of infrequent query patterns, keyed by
    /// `(epoch, code)`: a reader that grabbed its `Arc<ResultEpoch>`
    /// right before an epoch swap looks up under *its* epoch id and can
    /// never be answered from another generation's memo. Entries of
    /// superseded epochs are evicted on swap.
    support_memo: Mutex<FxHashMap<(u64, DfsCode), (Support, SupportSource)>>,
    /// Gids this shard owns (sorted), `None` in single-process mode.
    owned: Option<Vec<GraphId>>,
    /// Owner-restricted support memo, keyed like `support_memo`.
    owned_memo: Mutex<FxHashMap<(u64, DfsCode), Support>>,
    /// Last router-committed global epoch (0 until a commit arrives).
    /// In-memory only — the router republishes it on re-admission.
    global_epoch: AtomicU64,
    /// The shared work-stealing pool re-mines run on. Sized once at
    /// boot; the applier submits labeled jobs here, so epoch rebuilds
    /// never occupy a request worker.
    exec: Executor,
    /// Group-committing WAL: one fsync barrier covers every window
    /// submitted while the previous barrier was in flight.
    journal: GroupCommitJournal,
    /// Pending-window queue; guarded by a std mutex because the applier
    /// and `ack: applied` waiters need condition variables (the vendored
    /// `parking_lot` shim has none).
    queue: std::sync::Mutex<IngestQueue>,
    /// Signals the applier: a window was admitted (or stop was flagged).
    submitted: std::sync::Condvar,
    /// Signals waiters: a window was applied (or the pipeline failed).
    applied: std::sync::Condvar,
}

impl EngineShared {
    /// Mirrors the WAL committer's monotone group totals into the
    /// telemetry table (`fetch_max`, so concurrent mirrors are safe).
    fn mirror_group_stats(&self) {
        let stats = self.journal.stats();
        self.tel.counters().max(Counter::WalGroupCommits, stats.groups);
        self.tel.counters().max(Counter::WalGroupFrames, stats.frames);
    }
}

/// The socket-free core of the daemon: owns the mining state, the
/// group-committed journal, the ingest pipeline, and the current
/// [`ResultEpoch`]; thread-safe throughout.
pub struct ServeEngine {
    shared: Arc<EngineShared>,
    applier: Mutex<Option<JoinHandle<()>>>,
}

impl ServeEngine {
    /// Boots from `dir`, creating it from `initial` on first run.
    ///
    /// With an existing snapshot, `initial` is ignored: the database is
    /// the snapshot plus the replayed journal, and `cfg.min_support` /
    /// `cfg.k` are overridden by the persisted metadata. The snapshot is
    /// re-mined warm-started from the persisted pattern set.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, corrupt metadata, or a fresh directory
    /// without `initial`.
    pub fn boot(
        initial: Option<&GraphDb>,
        dir: &Path,
        cfg: &EngineConfig,
    ) -> Result<(ServeEngine, BootReport), String> {
        let tel = Telemetry::new();
        let meta_path = dir.join("meta.json");

        let from_snapshot = meta_path.exists();
        let (db, min_support, k, base_epoch, known) = if from_snapshot {
            let meta = std::fs::read_to_string(&meta_path).map_err(|e| format!("meta: {e}"))?;
            let meta = JsonValue::parse(&meta).map_err(|e| format!("meta: {e}"))?;
            let num = |key: &str| {
                meta.field(key)
                    .and_then(JsonValue::as_num)
                    .ok_or_else(|| format!("meta: missing numeric field `{key}`"))
            };
            let snap_name = meta
                .field("snapshot")
                .and_then(JsonValue::as_str)
                .ok_or("meta: missing string field `snapshot`")?;
            let store = GraphStore::open(&dir.join(snap_name), cfg.pool_pages)
                .map_err(|e| format!("snapshot: {e}"))?;
            let db = store.read_all().map_err(|e| format!("snapshot: {e}"))?;
            let known = match meta.field("patterns").and_then(JsonValue::as_str) {
                Some(name) => {
                    let file = std::fs::File::open(dir.join(name))
                        .map_err(|e| format!("patterns: {e}"))?;
                    Some(
                        read_patterns(std::io::BufReader::new(file))
                            .map_err(|e| format!("patterns: {e}"))?,
                    )
                }
                None => None,
            };
            (db, num("min_support")? as Support, num("k")? as usize, num("base_epoch")?, known)
        } else {
            let db = initial.cloned().ok_or_else(|| {
                format!("no snapshot in {} and no initial database", dir.display())
            })?;
            GraphStore::create(&dir.join("snapshot.0.gs"), &db, cfg.pool_pages)
                .map_err(|e| format!("snapshot: {e}"))?;
            write_meta(&meta_path, cfg.min_support, cfg.k, 0, None)?;
            (db, cfg.min_support, cfg.k, 0, None)
        };

        let mut mining = PartMinerConfig::with_k(k);
        mining.parallel = cfg.parallel;
        // Serving hands out supports; approximate ones would poison both
        // the `patterns` listing and the warm `support` path.
        mining.exact_supports = true;
        mining.embedding_budget_bytes = cfg.embedding_budget;

        let ufreq: Vec<Vec<f64>> = db.iter().map(|(_, g)| vec![0.0; g.vertex_count()]).collect();
        // The persisted pattern set is P(D) of this very snapshot, so the
        // boot mine may trust it outright; updates re-verify as usual.
        let mut boot_mining = mining;
        boot_mining.verify_unchanged = false;
        let outcome = PartMiner::new(boot_mining).mine_with_known(
            &db,
            &ufreq,
            min_support,
            known.as_ref(),
            &tel,
        );
        let mut state = outcome.state;
        state.config = mining;

        let (mut journal, batches) =
            UpdateJournal::recover(&dir.join("journal.wal"), cfg.pool_pages)
                .map_err(|e| format!("journal: {e}"))?;
        // Windowed mode rebuilds the retention bookkeeping by replaying
        // the journal against a mirror of the snapshot database. Windows
        // folded into the snapshot by a clean stop are base data (the
        // journal below `base_epoch` is gone), so retention restarts
        // over the windows admitted since.
        let mut tracker = cfg.window.map(|_| WindowTracker::new(&db));
        let mut mirror = tracker.as_ref().map(|_| db.clone());
        let mut replayed = 0usize;
        for batch in &batches {
            // Batches at or below the committed base epoch are already
            // folded into the snapshot (the journal outlived a clean
            // stop's truncation step); replaying them would double-apply.
            if batch.seq <= base_epoch {
                continue;
            }
            IncPartMiner::update_instrumented(&mut state, &batch.updates, &tel)
                .map_err(|e| format!("journal replay (batch {}): {e}", batch.seq))?;
            if let (Some(tr), Some(mirror)) = (tracker.as_mut(), mirror.as_mut()) {
                match batch.expiry {
                    Some(w) => tr.apply_expiry(mirror, &batch.updates, w),
                    None => tr.apply_and_track(batch.seq, mirror, &batch.updates),
                }
                .map_err(|e| format!("journal replay (batch {}): tracker: {e}", batch.seq))?;
            }
            tel.counters().bump(Counter::WalBatchesReplayed);
            replayed += 1;
        }
        // After a clean stop the journal is empty but the numbering must
        // continue where the snapshot left off.
        journal.set_next_seq(base_epoch + 1);
        // Catch up on retention before serving: a crash after a window
        // fell due but before its expiry frame went durable leaves the
        // replayed state over the horizon. Re-synthesize journal-first,
        // so a crash inside this loop just repeats it next boot —
        // replayed expiry frames above were already folded, so windows
        // can never expire twice.
        if let (Some(n), Some(tr), Some(mirror)) = (cfg.window, tracker.as_mut(), mirror.as_mut()) {
            while tr.live_count() > n {
                let (expired, ops) = tr.synthesize_expiry();
                journal
                    .append_unsynced(&ops, Some(expired))
                    .map_err(|e| format!("journal: boot expiry: {e}"))?;
                journal.sync().map_err(|e| format!("journal: boot expiry: {e}"))?;
                IncPartMiner::update_instrumented(&mut state, &ops, &tel)
                    .map_err(|e| format!("boot expiry (window {expired}): {e}"))?;
                tr.apply_expiry(mirror, &ops, expired)
                    .map_err(|e| format!("boot expiry (window {expired}): tracker: {e}"))?;
            }
        }
        let epoch = journal.next_seq() - 1;

        // One pool for every re-mine; sized like the mining config would
        // size its own.
        let budget = if mining.parallel {
            mining.thread_budget().map_err(|e| format!("threads: {e}"))?
        } else {
            1
        };

        let tail = state.partition.root().db.clone();
        let mut queue = IngestQueue::new(tail, epoch);
        queue.tracker = tracker;
        let current =
            ResultEpoch::new(epoch, state.partition.root().db.clone(), state.patterns().clone());
        let shared = Arc::new(EngineShared {
            tel,
            started: Instant::now(),
            dir: dir.to_path_buf(),
            min_support,
            k,
            embedding_budget: cfg.embedding_budget,
            pool_pages: cfg.pool_pages,
            ingest_cfg: cfg.ingest.clone(),
            window: cfg.window,
            current: RwLock::new(Arc::new(current)),
            inner: Mutex::new(EngineInner { state }),
            support_memo: Mutex::new(FxHashMap::default()),
            owned: cfg.owned.clone().map(|mut o| {
                o.sort_unstable();
                o.dedup();
                o
            }),
            owned_memo: Mutex::new(FxHashMap::default()),
            global_epoch: AtomicU64::new(0),
            exec: Executor::new(budget),
            journal: GroupCommitJournal::new(journal),
            queue: std::sync::Mutex::new(queue),
            submitted: std::sync::Condvar::new(),
            applied: std::sync::Condvar::new(),
        });
        let applier = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ingest-applier".to_string())
                .spawn(move || applier_loop(&shared))
                .map_err(|e| format!("spawn applier: {e}"))?
        };
        let engine = ServeEngine { shared, applier: Mutex::new(Some(applier)) };
        Ok((engine, BootReport { from_snapshot, replayed, epoch }))
    }

    /// The epoch currently being served.
    pub fn current(&self) -> Arc<ResultEpoch> {
        Arc::clone(&self.shared.current.read())
    }

    /// The engine's telemetry (request counters, mining spans).
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.tel
    }

    /// The absolute support threshold the result is maintained at.
    pub fn min_support(&self) -> Support {
        self.shared.min_support
    }

    /// Exact support of `pattern` in epoch `ep`, memoized engine-wide
    /// under the `(epoch, code)` key.
    ///
    /// The caller passes the epoch it is answering from (usually
    /// [`ServeEngine::current`], grabbed once per request), so a reader
    /// racing an epoch swap still gets the answer for the snapshot it
    /// holds — the epoch id in the key makes a cross-generation memo hit
    /// impossible by construction.
    pub fn support_of(&self, ep: &ResultEpoch, pattern: &Graph) -> (Support, SupportSource) {
        let code = min_dfs_code(pattern);
        if let Some(s) = ep.patterns.support(&code) {
            self.shared.tel.counters().bump(SupportSource::Patterns.counter());
            return (s, SupportSource::Patterns);
        }
        let key = (ep.epoch, code);
        let cached = self.shared.support_memo.lock().get(&key).copied();
        if let Some((s, src)) = cached {
            self.shared.tel.counters().bump(src.counter());
            return (s, src);
        }
        let (support, source) =
            ep.support_of_code(&key.1, &self.shared.tel, self.shared.embedding_budget);
        self.shared.support_memo.lock().insert(key, (support, source));
        self.shared.tel.counters().bump(source.counter());
        (support, source)
    }

    /// Owner-restricted exact support of `pattern` in epoch `ep`: only
    /// supporter gids in the shard's owned set count. Falls back to the
    /// full count in single-process mode (no owned set — every gid
    /// owned).
    ///
    /// The warm `patterns` fast path is unusable here — `P(D)` stores
    /// totals without supporter lists — so the count always goes through
    /// the embedding-list engine (or isomorphism search on spill), both
    /// of which report *which* gids support the pattern. Memoized like
    /// [`ServeEngine::support_of`], keyed by `(epoch, code)`.
    pub fn owned_support_of(&self, ep: &ResultEpoch, pattern: &Graph) -> Support {
        let Some(owned) = &self.shared.owned else {
            return self.support_of(ep, pattern).0;
        };
        let code = min_dfs_code(pattern);
        let key = (ep.epoch, code);
        if let Some(&s) = self.shared.owned_memo.lock().get(&key) {
            return s;
        }
        let counters = self.shared.tel.counters();
        let gids = match EmbeddingStore::new(&ep.db, self.shared.embedding_budget)
            .support(&key.1, counters)
        {
            Some((_, gids)) => {
                counters.bump(SupportSource::Embeddings.counter());
                gids
            }
            None => {
                counters.bump(SupportSource::Search.counter());
                graphmine_graph::iso::supporting_gids(&ep.db, &key.1)
            }
        };
        let support = gids.iter().filter(|g| owned.binary_search(g).is_ok()).count() as Support;
        self.shared.owned_memo.lock().insert(key, support);
        support
    }

    /// The gids this shard owns, when booted in sharded mode.
    pub fn owned_gids(&self) -> Option<&[GraphId]> {
        self.shared.owned.as_deref()
    }

    /// Live entry counts of the two support memos `(support, owned)` —
    /// observability for the epoch-swap eviction policy (each swap keeps
    /// the current and previous generations only, so these stay bounded
    /// under unbounded streaming ingest).
    pub fn memo_sizes(&self) -> (usize, usize) {
        (self.shared.support_memo.lock().len(), self.shared.owned_memo.lock().len())
    }

    /// The last router-committed global epoch (0 before any commit).
    pub fn global_epoch(&self) -> u64 {
        self.shared.global_epoch.load(Ordering::SeqCst)
    }

    /// 2PC commit: waits until the window acked as local `seq` is folded
    /// into the served epoch (`seq` 0 waits for nothing), then adopts
    /// `global` as the last-committed global epoch (monotone: an older
    /// commit can never roll the epoch back). Returns the resulting
    /// global epoch.
    ///
    /// # Errors
    ///
    /// [`UpdateError::Rejected`] for a `seq` the journal never assigned
    /// (waiting on it would hang forever); [`UpdateError::Failed`] when
    /// the pipeline fails before `seq` applies.
    pub fn commit_epoch(&self, global: u64, seq: u64) -> Result<u64, UpdateError> {
        if seq > 0 {
            if seq >= self.shared.journal.next_seq() {
                return Err(UpdateError::Rejected(format!("unknown seq {seq}")));
            }
            self.wait_applied(seq)?;
        }
        let prev = self.shared.global_epoch.fetch_max(global, Ordering::SeqCst);
        Ok(prev.max(global))
    }

    /// Dry-run validation of a window against the journal tail (2PC
    /// phase 0): exactly the verdict [`ServeEngine::submit_window`]
    /// would reach, with nothing admitted, journaled, or applied.
    ///
    /// # Errors
    ///
    /// [`UpdateError::Rejected`] with the first failing op,
    /// [`UpdateError::Failed`] on a poisoned pipeline.
    pub fn validate_window(&self, ops: &[DbUpdate]) -> Result<(), UpdateError> {
        let q = self.shared.queue.lock().expect("ingest queue poisoned");
        if let Some(msg) = &q.failed {
            return Err(UpdateError::Failed(msg.clone()));
        }
        match &q.tracker {
            Some(tr) => tr.validate_window(&q.tail, ops).map_err(UpdateError::Rejected),
            None => validate_batch(&q.tail, ops).map_err(UpdateError::Rejected),
        }
    }

    /// Admits one window into the streaming pipeline and blocks until it
    /// is **durable** (its group's fsync barrier passed). Application to
    /// the served epoch happens asynchronously, bounded by the
    /// `max_pending` staleness bound.
    ///
    /// # Errors
    ///
    /// [`UpdateError::Backpressure`] when the staleness bound is hit
    /// (nothing admitted — retry after a backoff);
    /// [`UpdateError::Rejected`] when validation fails (nothing
    /// journaled, served state unchanged); [`UpdateError::Failed`] when
    /// the pipeline is poisoned.
    pub fn submit_window(&self, ops: &[DbUpdate]) -> Result<StreamAck, UpdateError> {
        let shared = &self.shared;
        let counters = shared.tel.counters();
        let (seq, pending) = {
            let mut q = shared.queue.lock().expect("ingest queue poisoned");
            if let Some(msg) = &q.failed {
                return Err(UpdateError::Failed(msg.clone()));
            }
            if q.windows.len() >= shared.ingest_cfg.max_pending.max(1) {
                counters.bump(Counter::IngestBackpressure);
                return Err(UpdateError::Backpressure { pending: q.windows.len() });
            }
            let window = if shared.ingest_cfg.coalesce {
                coalesce_window(&q.tail, ops)
            } else {
                ops.to_vec()
            };
            counters.add(Counter::IngestOpsIn, ops.len() as u64);
            counters.add(Counter::IngestOpsCoalesced, (ops.len() - window.len()) as u64);
            match &q.tracker {
                Some(tr) => tr.validate_window(&q.tail, &window).map_err(UpdateError::Rejected)?,
                None => validate_batch(&q.tail, &window).map_err(UpdateError::Rejected)?,
            }
            // Seq assignment and tail application happen under the queue
            // lock, so validation order, tail order, and journal order
            // all agree.
            let seq = shared
                .journal
                .enqueue(&window)
                .map_err(|e| UpdateError::Failed(format!("journal: {e}")))?;
            let applied = match q.tracker.as_mut() {
                Some(_) => {
                    // Split the borrow: the tracker applies to the tail.
                    let IngestQueue { tail, tracker, .. } = &mut *q;
                    tracker.as_mut().expect("checked above").apply_and_track(seq, tail, &window)
                }
                None => apply_all(&mut q.tail, &window),
            };
            if let Err(e) = applied {
                // Validation passed but the tail refused: the pipeline's
                // tail no longer mirrors the journal — poison it.
                let msg = format!("tail apply (seq {seq}): {e}");
                q.failed = Some(msg.clone());
                shared.applied.notify_all();
                return Err(UpdateError::Failed(msg));
            }
            q.windows.insert(seq, window);
            counters.max(Counter::IngestPendingPeak, q.windows.len() as u64);
            (seq, q.windows.len())
        };
        shared.submitted.notify_all();
        // Durability wait happens *outside* the queue lock: the next
        // group forms (and further windows are admitted) while this
        // one's fsync barrier is in flight.
        shared
            .journal
            .wait_durable(seq)
            .map_err(|e| UpdateError::Failed(format!("journal: {e}")))?;
        counters.bump(Counter::WalBatchesAppended);
        counters.bump(Counter::IngestWindows);
        shared.mirror_group_stats();
        Ok(StreamAck { seq, pending })
    }

    /// Blocks until window `seq` is folded into the served epoch and
    /// returns its summary.
    ///
    /// # Errors
    ///
    /// [`UpdateError::Failed`] when the pipeline fails before `seq` is
    /// applied.
    pub fn wait_applied(&self, seq: u64) -> Result<UpdateSummary, UpdateError> {
        let shared = &self.shared;
        let mut q = shared.queue.lock().expect("ingest queue poisoned");
        while q.applied_seq < seq {
            if let Some(msg) = &q.failed {
                return Err(UpdateError::Failed(msg.clone()));
            }
            q = shared.applied.wait(q).expect("ingest queue poisoned");
        }
        Ok(q.summaries.remove(&seq).unwrap_or(UpdateSummary {
            seq,
            uf: 0,
            fi: 0,
            if_new: 0,
            pattern_count: self.current().patterns.len(),
        }))
    }

    /// Validates, journals (group-committed fsync), applies, and waits
    /// for the new epoch: on success the returned sequence number is
    /// durable *and* visible to readers — the synchronous path the
    /// `ack: applied` protocol mode and the CLI use.
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::submit_window`].
    pub fn apply_update(&self, ops: &[DbUpdate]) -> Result<UpdateSummary, UpdateError> {
        let ack = self.submit_window(ops)?;
        self.wait_applied(ack.seq)
    }

    /// Acked-but-unapplied windows right now (the served epoch's
    /// staleness in windows).
    pub fn pending_windows(&self) -> usize {
        self.shared.queue.lock().expect("ingest queue poisoned").windows.len()
    }

    /// Drains the pipeline, folds the journal into a fresh snapshot, and
    /// truncates it. The next boot warm-starts from the persisted
    /// `P(D)`.
    ///
    /// Crash-safe: the new snapshot and pattern files are written under
    /// epoch-suffixed names, then `meta.json` is atomically renamed to
    /// point at them. A crash before the rename boots from the old pair
    /// (re-replaying the journal); a crash after it boots from the new
    /// pair (skipping the already-folded batches).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and a poisoned pipeline.
    pub fn clean_stop(&self) -> Result<(), String> {
        let shared = &self.shared;
        // Drain: every admitted window must be folded in before the
        // snapshot, or acked windows would be lost with the truncation.
        let mut q = shared.queue.lock().expect("ingest queue poisoned");
        while !q.windows.is_empty() {
            if let Some(msg) = &q.failed {
                return Err(format!("ingest pipeline failed: {msg}"));
            }
            q = shared.applied.wait(q).expect("ingest queue poisoned");
        }
        // Keep holding the queue lock: no window can be admitted while
        // the fold runs, and the applier is idle (nothing pending).
        let inner = shared.inner.lock();
        let base_epoch = shared.journal.next_seq() - 1;
        let snap_name = format!("snapshot.{base_epoch}.gs");
        let pat_name = format!("patterns.{base_epoch}.pat");

        let db = inner.state.partition.root().db.clone();
        GraphStore::create(&shared.dir.join(&snap_name), &db, shared.pool_pages)
            .map_err(|e| format!("snapshot: {e}"))?;
        let mut buf = Vec::new();
        write_patterns(&mut buf, inner.state.patterns()).map_err(|e| format!("patterns: {e}"))?;
        write_durable(&shared.dir.join(&pat_name), &buf).map_err(|e| format!("patterns: {e}"))?;
        // Commit point: once the rename lands, boots use the new pair.
        write_meta(
            &shared.dir.join("meta.json"),
            shared.min_support,
            shared.k,
            base_epoch,
            Some((&snap_name, &pat_name)),
        )?;

        // Everything below is garbage collection; the directory is
        // already consistent.
        shared
            .journal
            .with_journal(|j| j.reset())
            .map_err(|e| format!("journal: {e}"))?
            .map_err(|e| format!("journal: {e}"))?;
        if let Ok(entries) = std::fs::read_dir(&shared.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                let stale = (name.starts_with("snapshot.") && name.ends_with(".gs")
                    || name.starts_with("patterns.") && name.ends_with(".pat"))
                    && name != snap_name
                    && name != pat_name;
                if stale {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        Ok(())
    }

    /// Handles one non-`shutdown` request and builds its response.
    /// `shutdown` is the server loop's business (it must stop threads).
    pub fn handle(&self, req: &Request) -> JsonValue {
        match req {
            Request::Status { report } => self.handle_status(*report),
            Request::Patterns { top, min_support } => self.handle_patterns(*top, *min_support),
            Request::Support { graph, owned } => self.handle_support(graph, *owned),
            Request::SupportBatch { graphs, owned } => self.handle_support_batch(graphs, *owned),
            Request::Update { ops, ack, dry_run } => self.handle_update(ops, *ack, *dry_run),
            Request::EpochCommit { global, seq } => self.handle_epoch_commit(*global, *seq),
            Request::Shutdown => {
                self.shared.tel.counters().bump(Counter::ReqShutdown);
                ok_response(vec![("stopping", JsonValue::Num(1))])
            }
        }
    }

    fn handle_epoch_commit(&self, global: u64, seq: u64) -> JsonValue {
        match self.commit_epoch(global, seq) {
            Ok(g) => ok_response(vec![
                ("global_epoch", JsonValue::Num(g)),
                ("epoch", JsonValue::Num(self.current().epoch)),
            ]),
            Err(e) => {
                self.shared.tel.counters().bump(Counter::ReqErrors);
                error_response(&e.to_string())
            }
        }
    }

    fn handle_update(&self, ops: &[DbUpdate], ack: AckMode, dry_run: bool) -> JsonValue {
        let counters = self.shared.tel.counters();
        if dry_run {
            return match self.validate_window(ops) {
                Ok(()) => {
                    counters.bump(Counter::ReqUpdate);
                    ok_response(vec![
                        ("valid", JsonValue::Num(1)),
                        ("epoch", JsonValue::Num(self.current().epoch)),
                    ])
                }
                Err(e) => {
                    counters.bump(Counter::ReqErrors);
                    error_response(&e.to_string())
                }
            };
        }
        let result = match ack {
            AckMode::Applied => self.apply_update(ops).map(|s| {
                ok_response(vec![
                    ("epoch", JsonValue::Num(s.seq)),
                    ("seq", JsonValue::Num(s.seq)),
                    ("uf", JsonValue::Num(s.uf as u64)),
                    ("fi", JsonValue::Num(s.fi as u64)),
                    ("if", JsonValue::Num(s.if_new as u64)),
                    ("pattern_count", JsonValue::Num(s.pattern_count as u64)),
                ])
            }),
            AckMode::Durable => self.submit_window(ops).map(|a| {
                ok_response(vec![
                    ("seq", JsonValue::Num(a.seq)),
                    ("durable", JsonValue::Num(1)),
                    ("pending", JsonValue::Num(a.pending as u64)),
                    ("epoch", JsonValue::Num(self.current().epoch)),
                ])
            }),
        };
        match result {
            Ok(resp) => {
                counters.bump(Counter::ReqUpdate);
                resp
            }
            // Back-pressure is shedding, not failure: it gets its own
            // reply (and its own counter, bumped at the shed site) and
            // does not count as a request error.
            Err(UpdateError::Backpressure { pending }) => JsonValue::Obj(vec![
                ("status".to_string(), JsonValue::Str("error".to_string())),
                ("error".to_string(), JsonValue::Str("backpressure".to_string())),
                ("pending".to_string(), JsonValue::Num(pending as u64)),
            ]),
            Err(e) => {
                counters.bump(Counter::ReqErrors);
                error_response(&e.to_string())
            }
        }
    }

    fn handle_status(&self, report: bool) -> JsonValue {
        let shared = &self.shared;
        shared.tel.counters().bump(Counter::ReqStatus);
        shared.mirror_group_stats();
        let ep = self.current();
        let counters = JsonValue::Obj(
            shared
                .tel
                .counters()
                .snapshot()
                .into_iter()
                .map(|(name, v)| (name.to_string(), JsonValue::Num(v)))
                .collect(),
        );
        let mut fields = vec![
            ("epoch", JsonValue::Num(ep.epoch)),
            ("global_epoch", JsonValue::Num(self.global_epoch())),
            ("uptime_ms", JsonValue::Num(shared.started.elapsed().as_millis() as u64)),
            ("db_graphs", JsonValue::Num(ep.db.len() as u64)),
            ("db_edges", JsonValue::Num(ep.db.total_edges() as u64)),
            ("pattern_count", JsonValue::Num(ep.patterns.len() as u64)),
            ("min_support", JsonValue::Num(u64::from(shared.min_support))),
            ("pending_windows", JsonValue::Num(self.pending_windows() as u64)),
            (
                "owned_graphs",
                JsonValue::Num(match &shared.owned {
                    Some(o) => o.len() as u64,
                    None => ep.db.len() as u64,
                }),
            ),
            ("counters", counters),
        ];
        if report {
            let dump = RunReport::capture("serve", &shared.tel).to_json();
            let parsed = JsonValue::parse(&dump).unwrap_or(JsonValue::Null);
            fields.push(("report", parsed));
        }
        ok_response(fields)
    }

    fn handle_patterns(&self, top: usize, min_support: Option<Support>) -> JsonValue {
        self.shared.tel.counters().bump(Counter::ReqPatterns);
        let ep = self.current();
        let floor = min_support.unwrap_or(0);
        let mut hits: Vec<_> = ep.patterns.iter().filter(|p| p.support >= floor).collect();
        hits.sort_by(|a, b| b.support.cmp(&a.support).then_with(|| a.code.cmp(&b.code)));
        let total = hits.len();
        hits.truncate(top);
        // `sorted:1` attests the candidate-reply contract the router's
        // bounded SON phase 1 relies on: rows ordered by (support desc,
        // code asc), so truncating at `top` keeps exactly the locally
        // best candidates. A shard reply without this marker cannot be
        // safely truncated and the router treats it as lossy.
        ok_response(vec![
            ("epoch", JsonValue::Num(ep.epoch)),
            ("total", JsonValue::Num(total as u64)),
            ("returned", JsonValue::Num(hits.len() as u64)),
            ("sorted", JsonValue::Num(1)),
            ("patterns", JsonValue::Arr(hits.into_iter().map(pattern_to_json).collect())),
        ])
    }

    fn handle_support(&self, pattern: &Graph, owned: bool) -> JsonValue {
        self.shared.tel.counters().bump(Counter::ReqSupport);
        let ep = self.current();
        if owned {
            let support = self.owned_support_of(&ep, pattern);
            return ok_response(vec![
                ("epoch", JsonValue::Num(ep.epoch)),
                ("support", JsonValue::Num(u64::from(support))),
                ("source", JsonValue::Str("owned".to_string())),
            ]);
        }
        let (support, source) = self.support_of(&ep, pattern);
        ok_response(vec![
            ("epoch", JsonValue::Num(ep.epoch)),
            ("support", JsonValue::Num(u64::from(support))),
            ("source", JsonValue::Str(source.name().to_string())),
        ])
    }

    fn handle_support_batch(&self, graphs: &[Graph], owned: bool) -> JsonValue {
        self.shared.tel.counters().bump(Counter::ReqSupport);
        let ep = self.current();
        let supports = graphs
            .iter()
            .map(|g| {
                let s =
                    if owned { self.owned_support_of(&ep, g) } else { self.support_of(&ep, g).0 };
                JsonValue::Num(u64::from(s))
            })
            .collect();
        ok_response(vec![
            ("epoch", JsonValue::Num(ep.epoch)),
            ("supports", JsonValue::Arr(supports)),
        ])
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("ingest queue poisoned");
            q.stop = true;
        }
        self.shared.submitted.notify_all();
        self.shared.applied.notify_all();
        if let Some(h) = self.applier.lock().take() {
            let _ = h.join();
        }
    }
}

/// The applier: folds durable windows into the mining state strictly in
/// sequence order, one [`ResultEpoch`] swap per window. Runs until the
/// engine drops; a failed window poisons the pipeline (the tail mirror
/// and the mining state would diverge otherwise).
fn applier_loop(shared: &Arc<EngineShared>) {
    loop {
        let (seq, window) = {
            let mut q = shared.queue.lock().expect("ingest queue poisoned");
            loop {
                if q.stop {
                    return;
                }
                let next = q.applied_seq + 1;
                if let Some(w) = q.windows.get(&next) {
                    break (next, w.clone());
                }
                q = shared.submitted.wait(q).expect("ingest queue poisoned");
            }
        };
        // The window must be durable before it becomes visible in an
        // epoch: an acked reader answer must never describe state a
        // crash could lose.
        if let Err(e) = shared.journal.wait_durable(seq) {
            fail_pipeline(shared, format!("journal (seq {seq}): {e}"));
            return;
        }
        let summary = {
            let mut inner = shared.inner.lock();
            let inc =
                match IncPartMiner::update_on(&mut inner.state, &window, &shared.exec, &shared.tel)
                {
                    Ok(inc) => inc,
                    Err(e) => {
                        drop(inner);
                        fail_pipeline(shared, format!("apply (seq {seq}): {e}"));
                        return;
                    }
                };
            let next = ResultEpoch::new(
                seq,
                inner.state.partition.root().db.clone(),
                inner.state.patterns().clone(),
            );
            *shared.current.write() = Arc::new(next);
            shared.tel.counters().bump(Counter::EpochSwaps);
            // Superseded memo entries are dead weight, but readers that
            // grabbed the previous epoch's `Arc` before this swap are
            // still answering from it — keep exactly one generation of
            // slack (N-1) so those in-flight readers hit their memo
            // instead of re-inserting evicted entries, and evict
            // everything older so a long-running daemon under streaming
            // ingest holds at most two generations at any time.
            shared.support_memo.lock().retain(|&(epoch, _), _| epoch + 1 >= seq);
            shared.owned_memo.lock().retain(|&(epoch, _), _| epoch + 1 >= seq);
            UpdateSummary {
                seq,
                uf: inc.uf.len(),
                fi: inc.fi.len(),
                if_new: inc.if_new.len(),
                pattern_count: inc.patterns.len(),
            }
        };
        let mut q = shared.queue.lock().expect("ingest queue poisoned");
        q.windows.remove(&seq);
        q.applied_seq = seq;
        q.record_summary(summary);
        // Sliding-window retention: with the newest window now visible,
        // expire windows past the horizon. Each expiry is journaled as a
        // tagged frame *before* the tail moves (journal-first, still
        // under the queue lock so its seq slots in order); the frame then
        // rides the normal pipeline — durable before visible, exactly
        // like a submitted window. A crash between enqueue and the fsync
        // barrier just loses the frame, and boot re-synthesizes it.
        if let Some(n) = shared.window {
            while q.tracker.as_ref().is_some_and(|tr| tr.live_count() > n) {
                #[cfg(feature = "fault-injection")]
                if graphmine_graph::fault::armed(graphmine_graph::fault::Fault::SkipExpiry) {
                    break;
                }
                let (expired, ops) = q.tracker.as_mut().expect("checked above").synthesize_expiry();
                let eseq = match shared.journal.enqueue_expiry(&ops, expired) {
                    Ok(eseq) => eseq,
                    Err(e) => {
                        q.failed = Some(format!("journal (expiry of window {expired}): {e}"));
                        drop(q);
                        shared.applied.notify_all();
                        return;
                    }
                };
                let IngestQueue { tail, tracker, .. } = &mut *q;
                if let Err(e) =
                    tracker.as_mut().expect("windowed mode").apply_expiry(tail, &ops, expired)
                {
                    q.failed = Some(format!("tail apply (expiry seq {eseq}): {e}"));
                    drop(q);
                    shared.applied.notify_all();
                    return;
                }
                q.windows.insert(eseq, ops);
                shared.tel.counters().bump(Counter::IngestWindowsExpired);
            }
        }
        drop(q);
        shared.applied.notify_all();
    }
}

fn fail_pipeline(shared: &EngineShared, msg: String) {
    let mut q = shared.queue.lock().expect("ingest queue poisoned");
    q.failed = Some(msg);
    drop(q);
    shared.applied.notify_all();
}

/// Rejects a window that would fail mid-application: the incremental
/// miner applies updates one by one and an error would leave it half
/// applied, so the whole window is dry-run against clones of the touched
/// graphs first.
fn validate_batch(db: &GraphDb, ops: &[DbUpdate]) -> Result<(), String> {
    let mut scratch: FxHashMap<GraphId, Graph> = FxHashMap::default();
    for (i, up) in ops.iter().enumerate() {
        if (up.gid as usize) >= db.len() {
            return Err(format!("op {i}: graph {} out of range ({} graphs)", up.gid, db.len()));
        }
        let g = scratch.entry(up.gid).or_insert_with(|| db.graph(up.gid).clone());
        up.update.apply(g).map_err(|e| format!("op {i}: {e}"))?;
    }
    Ok(())
}

/// Writes `bytes` to `path` and fsyncs before returning.
fn write_durable(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut f = std::fs::File::create(path)?;
    f.write_all(bytes)?;
    f.sync_all()
}

/// Writes the commit record: threshold, unit count, folded epoch, and —
/// after the first clean stop — the snapshot/pattern pair to boot from.
/// Written to a temp file and renamed so the swap is atomic.
fn write_meta(
    path: &Path,
    min_support: Support,
    k: usize,
    base_epoch: u64,
    files: Option<(&str, &str)>,
) -> Result<(), String> {
    let mut fields = vec![
        ("min_support".to_string(), JsonValue::Num(u64::from(min_support))),
        ("k".to_string(), JsonValue::Num(k as u64)),
        ("base_epoch".to_string(), JsonValue::Num(base_epoch)),
        ("snapshot".to_string(), JsonValue::Str("snapshot.0.gs".to_string())),
    ];
    if let Some((snap, pats)) = files {
        fields[3].1 = JsonValue::Str(snap.to_string());
        fields.push(("patterns".to_string(), JsonValue::Str(pats.to_string())));
    }
    let tmp = path.with_extension("json.tmp");
    write_durable(&tmp, JsonValue::Obj(fields).to_json().as_bytes())
        .map_err(|e| format!("meta: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("meta: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmine_graph::GraphUpdate;

    fn small_db() -> GraphDb {
        (0..4)
            .map(|i| {
                let mut g = Graph::new();
                let a = g.add_vertex(0);
                let b = g.add_vertex(1);
                let c = g.add_vertex(2);
                g.add_edge(a, b, 10).unwrap();
                g.add_edge(b, c, 11).unwrap();
                if i % 2 == 0 {
                    g.add_edge(c, a, 12).unwrap();
                }
                g
            })
            .collect()
    }

    fn cfg() -> EngineConfig {
        EngineConfig { min_support: 4, k: 2, ..EngineConfig::default() }
    }

    #[test]
    fn boot_serves_the_cold_mine_result() {
        let dir = tempfile::tempdir().unwrap();
        let db = small_db();
        let (engine, boot) = ServeEngine::boot(Some(&db), dir.path(), &cfg()).unwrap();
        assert!(!boot.from_snapshot);
        assert_eq!(boot.epoch, 0);
        let ep = engine.current();
        assert_eq!(ep.epoch, 0);
        // Two edges + the 2-edge path appear in all four graphs.
        assert_eq!(ep.patterns.len(), 3);
    }

    #[test]
    fn update_swaps_the_epoch_and_bad_batches_are_atomic() {
        let dir = tempfile::tempdir().unwrap();
        let db = small_db();
        let (engine, _) = ServeEngine::boot(Some(&db), dir.path(), &cfg()).unwrap();
        // Invalid second op: the whole batch must be rejected untouched.
        let bad = vec![
            DbUpdate { gid: 1, update: GraphUpdate::RelabelVertex { v: 0, label: 7 } },
            DbUpdate { gid: 1, update: GraphUpdate::AddEdge { u: 0, v: 99, label: 1 } },
        ];
        assert!(matches!(engine.apply_update(&bad), Err(UpdateError::Rejected(_))));
        assert_eq!(engine.current().epoch, 0);
        assert_eq!(engine.telemetry().counters().get(Counter::WalBatchesAppended), 0);

        let good = vec![DbUpdate { gid: 1, update: GraphUpdate::RelabelVertex { v: 0, label: 7 } }];
        let summary = engine.apply_update(&good).unwrap();
        assert_eq!(summary.seq, 1);
        let ep = engine.current();
        assert_eq!(ep.epoch, 1);
        assert_eq!(ep.patterns.len(), summary.pattern_count);
        assert!(summary.fi > 0, "relabeling a shared vertex demotes patterns");
        assert_eq!(engine.telemetry().counters().get(Counter::IngestWindows), 1);
        assert_eq!(engine.telemetry().counters().get(Counter::EpochSwaps), 1);
    }

    #[test]
    fn coalesced_window_keeps_update_semantics() {
        let dir = tempfile::tempdir().unwrap();
        let db = small_db();
        let (engine, _) = ServeEngine::boot(Some(&db), dir.path(), &cfg()).unwrap();
        // A relabel storm that folds to a single op plus a full cancel.
        let ops = vec![
            DbUpdate { gid: 1, update: GraphUpdate::RelabelVertex { v: 0, label: 5 } },
            DbUpdate { gid: 1, update: GraphUpdate::RelabelVertex { v: 0, label: 7 } },
            DbUpdate { gid: 2, update: GraphUpdate::RelabelVertex { v: 1, label: 9 } },
            DbUpdate { gid: 2, update: GraphUpdate::RelabelVertex { v: 1, label: 1 } },
        ];
        let summary = engine.apply_update(&ops).unwrap();
        assert_eq!(summary.seq, 1);
        let counters = engine.telemetry().counters();
        assert_eq!(counters.get(Counter::IngestOpsIn), 4);
        assert_eq!(counters.get(Counter::IngestOpsCoalesced), 3, "one survivor out of four");
        assert_eq!(engine.current().db.graph(1).vlabel(0), 7);
        assert_eq!(engine.current().db.graph(2).vlabel(1), 1, "cancelled chain left alone");
    }

    #[test]
    fn backpressure_rejects_without_admitting() {
        let dir = tempfile::tempdir().unwrap();
        let db = small_db();
        let mut config = cfg();
        config.ingest.max_pending = 1;
        let (engine, _) = ServeEngine::boot(Some(&db), dir.path(), &config).unwrap();
        // Fill the bound from underneath: park a window in the queue by
        // stopping the applier first.
        {
            let mut q = engine.shared.queue.lock().unwrap();
            q.windows.insert(1, Vec::new());
        }
        let ops = vec![DbUpdate { gid: 0, update: GraphUpdate::RelabelVertex { v: 0, label: 3 } }];
        match engine.submit_window(&ops) {
            Err(UpdateError::Backpressure { pending }) => assert_eq!(pending, 1),
            other => panic!("expected backpressure, got {other:?}"),
        }
        assert_eq!(engine.telemetry().counters().get(Counter::IngestBackpressure), 1);
        assert_eq!(engine.telemetry().counters().get(Counter::WalBatchesAppended), 0);
        // Unpark and confirm the pipeline still works.
        {
            let mut q = engine.shared.queue.lock().unwrap();
            q.windows.remove(&1);
        }
        let summary = engine.apply_update(&ops).unwrap();
        assert_eq!(summary.seq, 1);
    }

    #[test]
    fn support_path_covers_all_three_sources() {
        let dir = tempfile::tempdir().unwrap();
        let db = small_db();
        let (engine, _) = ServeEngine::boot(Some(&db), dir.path(), &cfg()).unwrap();
        let ep = engine.current();
        let tel = engine.telemetry();

        // Frequent pattern: answered from P(D).
        let mut frequent = Graph::new();
        let a = frequent.add_vertex(0);
        let b = frequent.add_vertex(1);
        frequent.add_edge(a, b, 10).unwrap();
        let (s, src) = ep.support_of(&frequent, tel, DEFAULT_EMBEDDING_BUDGET);
        assert_eq!((s, src), (4, SupportSource::Patterns));

        // Infrequent but present: the triangle edge, in graphs 0 and 2.
        let mut rare = Graph::new();
        let a = rare.add_vertex(2);
        let b = rare.add_vertex(0);
        rare.add_edge(a, b, 12).unwrap();
        let (s, src) = ep.support_of(&rare, tel, DEFAULT_EMBEDDING_BUDGET);
        assert_eq!(s, 2);
        assert_eq!(src, SupportSource::Embeddings);
        // The engine-level memoized path agrees and keeps the source.
        assert_eq!(engine.support_of(&ep, &rare), (2, src));
        assert_eq!(engine.support_of(&ep, &rare), (2, src), "memo hit answers identically");

        // Zero embedding budget: the triangle's root edge list has
        // occurrences, so it cannot be admitted and the query falls back
        // to isomorphism search. (An *absent* pattern would not do — its
        // empty list costs zero bytes and fits any budget.)
        let mut tri = Graph::new();
        let a = tri.add_vertex(0);
        let b = tri.add_vertex(1);
        let c = tri.add_vertex(2);
        tri.add_edge(a, b, 10).unwrap();
        tri.add_edge(b, c, 11).unwrap();
        tri.add_edge(c, a, 12).unwrap();
        let (s, src) = ep.support_of(&tri, tel, 0);
        assert_eq!(s, 2);
        assert_eq!(src, SupportSource::Search);
    }

    #[test]
    fn clean_stop_then_boot_resumes_epoch_and_patterns() {
        let dir = tempfile::tempdir().unwrap();
        let db = small_db();
        let (engine, _) = ServeEngine::boot(Some(&db), dir.path(), &cfg()).unwrap();
        // Close the triangle everywhere so multi-edge patterns stay
        // frequent — the warm-restart skip below only triggers for
        // generated (size >= 2) candidates found in the known set.
        let up = vec![
            DbUpdate { gid: 1, update: GraphUpdate::AddEdge { u: 2, v: 0, label: 12 } },
            DbUpdate { gid: 3, update: GraphUpdate::AddEdge { u: 2, v: 0, label: 12 } },
        ];
        engine.apply_update(&up).unwrap();
        let served = engine.current();
        engine.clean_stop().unwrap();
        drop(engine);

        // min_support/k in the boot config are deliberately wrong; the
        // persisted metadata must win.
        let stale = EngineConfig { min_support: 999, k: 7, ..EngineConfig::default() };
        let (engine, boot) = ServeEngine::boot(None, dir.path(), &stale).unwrap();
        assert!(boot.from_snapshot);
        assert_eq!(boot.replayed, 0, "clean stop folded the journal away");
        assert_eq!(boot.epoch, 1, "numbering continues from the snapshot");
        assert_eq!(engine.min_support(), 4);
        assert!(engine.current().patterns.same_codes_and_supports(&served.patterns));
        // Warm restart actually consumed the persisted pattern set.
        assert!(engine.telemetry().counters().get(Counter::KnownSkipped) > 0);
    }

    /// Blocks until every pending window (including synthesized expiry
    /// frames) has folded into the served epoch.
    fn drain(engine: &ServeEngine) {
        for _ in 0..1000 {
            if engine.pending_windows() == 0 {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        panic!("ingest pipeline failed to drain");
    }

    fn assert_same_db(a: &GraphDb, b: &GraphDb, ctx: &str) {
        assert_eq!(a.len(), b.len(), "{ctx}: graph count");
        for gid in 0..a.len() as u32 {
            let (ga, gb) = (a.graph(gid), b.graph(gid));
            assert_eq!(ga.vlabels(), gb.vlabels(), "{ctx}: graph {gid} vertex labels");
            assert_eq!(ga.edge_count(), gb.edge_count(), "{ctx}: graph {gid} edge count");
            for e in 0..ga.edge_count() as u32 {
                assert_eq!(ga.edge(e), gb.edge(e), "{ctx}: graph {gid} edge {e}");
            }
        }
    }

    /// The four windows of the sliding-window tests: an edge + a relabel
    /// that expire, then the same shapes again on other graphs.
    fn window_stream() -> [Vec<DbUpdate>; 4] {
        [
            vec![DbUpdate { gid: 1, update: GraphUpdate::AddEdge { u: 2, v: 0, label: 12 } }],
            vec![DbUpdate { gid: 0, update: GraphUpdate::RelabelVertex { v: 0, label: 5 } }],
            vec![DbUpdate { gid: 3, update: GraphUpdate::AddEdge { u: 2, v: 0, label: 12 } }],
            vec![DbUpdate { gid: 2, update: GraphUpdate::RelabelVertex { v: 0, label: 5 } }],
        ]
    }

    /// Boots a throwaway engine over `db` and returns its mined epoch —
    /// the from-scratch reference a windowed engine must match.
    fn reference_epoch(db: &GraphDb) -> Arc<ResultEpoch> {
        let dir = tempfile::tempdir().unwrap();
        let (engine, _) = ServeEngine::boot(Some(db), dir.path(), &cfg()).unwrap();
        engine.current()
    }

    #[test]
    fn windowed_serving_expires_past_the_horizon() {
        let dir = tempfile::tempdir().unwrap();
        let db = small_db();
        let config = EngineConfig { window: Some(2), ..cfg() };
        let (engine, _) = ServeEngine::boot(Some(&db), dir.path(), &config).unwrap();
        let windows = window_stream();
        for w in &windows {
            engine.apply_update(w).unwrap();
        }
        drain(&engine);
        assert_eq!(engine.telemetry().counters().get(Counter::IngestWindowsExpired), 2);

        // Served state must equal a from-scratch mine of base data plus
        // the two live windows: window 1's edge is gone, window 2's
        // relabel is restored.
        let mut live = db.clone();
        apply_all(&mut live, &windows[2]).unwrap();
        apply_all(&mut live, &windows[3]).unwrap();
        let served = engine.current();
        assert_same_db(&served.db, &live, "served tail after two expiries");
        let reference = reference_epoch(&live);
        assert!(
            served.patterns.same_codes_and_supports(&reference.patterns),
            "windowed result diverged from a batch mine of the live windows"
        );
        // The expired edge really stopped counting: graphs 0 and 3 match
        // edge (2)-12-(0) (window 4's relabel takes graph 2 out, window
        // 1's expired copy on graph 1 no longer counts).
        let mut closing = Graph::new();
        let a = closing.add_vertex(2);
        let b = closing.add_vertex(0);
        closing.add_edge(a, b, 12).unwrap();
        assert_eq!(engine.support_of(&served, &closing).0, 2);
    }

    #[test]
    fn windowed_boot_replays_and_catches_up() {
        let dir = tempfile::tempdir().unwrap();
        let db = small_db();
        let config = EngineConfig { window: Some(2), ..cfg() };
        let (engine, _) = ServeEngine::boot(Some(&db), dir.path(), &config).unwrap();
        let windows = window_stream();
        for w in &windows {
            engine.apply_update(w).unwrap();
        }
        drain(&engine);
        drop(engine);

        // Crash-style restart (no clean stop): the journal holds the four
        // windows plus two expiry frames; replay must rebuild the tracker
        // without double-expiring.
        let mut live = db.clone();
        apply_all(&mut live, &windows[2]).unwrap();
        apply_all(&mut live, &windows[3]).unwrap();
        let (engine, boot) = ServeEngine::boot(None, dir.path(), &config).unwrap();
        assert_eq!(boot.replayed, 6, "four windows and two expiry frames");
        assert_same_db(&engine.current().db, &live, "replayed windowed tail");
        drop(engine);

        // Rebooting with a tighter horizon expires the overhang at boot,
        // journal-first: the catch-up frame lands before serving starts.
        let shrunk = EngineConfig { window: Some(1), ..cfg() };
        let (engine, boot) = ServeEngine::boot(None, dir.path(), &shrunk).unwrap();
        let mut last = db.clone();
        apply_all(&mut last, &windows[3]).unwrap();
        assert_same_db(&engine.current().db, &last, "tail after boot catch-up");
        let reference = reference_epoch(&last);
        assert!(engine.current().patterns.same_codes_and_supports(&reference.patterns));
        assert_eq!(boot.epoch, 7, "the catch-up expiry frame took a seq");

        // Clean stop freezes the surviving window into the snapshot;
        // retention restarts over windows admitted after the restart.
        engine.clean_stop().unwrap();
        drop(engine);
        let (engine, boot) = ServeEngine::boot(None, dir.path(), &shrunk).unwrap();
        assert_eq!(boot.replayed, 0, "clean stop folded the journal away");
        assert_same_db(&engine.current().db, &last, "frozen snapshot serves unchanged");
        assert_eq!(
            engine.shared.queue.lock().unwrap().tracker.as_ref().unwrap().live_count(),
            0,
            "frozen windows are base data, not live windows"
        );
    }

    #[test]
    fn windowed_validation_spans_pending_windows() {
        let dir = tempfile::tempdir().unwrap();
        let db = small_db();
        let config = EngineConfig { window: Some(8), ..cfg() };
        let (engine, _) = ServeEngine::boot(Some(&db), dir.path(), &config).unwrap();
        // Window 1 grows a pendant vertex on graph 0 (vertex 3, edge 3).
        engine
            .apply_update(&[DbUpdate {
                gid: 0,
                update: GraphUpdate::AddVertex { label: 9, attach_to: 0, elabel: 13 },
            }])
            .unwrap();
        // A later window may not reference or delete it...
        let cross =
            vec![DbUpdate { gid: 0, update: GraphUpdate::RelabelVertex { v: 3, label: 1 } }];
        match engine.validate_window(&cross) {
            Err(UpdateError::Rejected(msg)) => {
                assert!(msg.contains("belongs to an earlier live window"), "{msg}");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        let base_delete = vec![DbUpdate { gid: 0, update: GraphUpdate::DeleteEdge { e: 0 } }];
        match engine.validate_window(&base_delete) {
            Err(UpdateError::Rejected(msg)) => {
                assert!(msg.contains("cannot delete base edge"), "{msg}");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        // ...while deleting its own creations stays legal.
        engine
            .apply_update(&[
                DbUpdate { gid: 1, update: GraphUpdate::AddEdge { u: 2, v: 0, label: 12 } },
                DbUpdate { gid: 1, update: GraphUpdate::DeleteEdge { e: 2 } },
            ])
            .unwrap();
        assert_eq!(engine.current().db.graph(1).edge_count(), 2);
    }

    #[test]
    fn owned_support_restricts_to_the_owned_set() {
        let dir = tempfile::tempdir().unwrap();
        let db = small_db();
        let mut config = cfg();
        config.owned = Some(vec![3, 1]); // unsorted on purpose
        let (engine, _) = ServeEngine::boot(Some(&db), dir.path(), &config).unwrap();
        let ep = engine.current();

        // The (0)-10-(1) edge is in all four graphs; two are owned.
        let mut frequent = Graph::new();
        let a = frequent.add_vertex(0);
        let b = frequent.add_vertex(1);
        frequent.add_edge(a, b, 10).unwrap();
        assert_eq!(engine.owned_support_of(&ep, &frequent), 2);
        assert_eq!(engine.support_of(&ep, &frequent).0, 4, "full count unaffected");
        assert_eq!(engine.owned_support_of(&ep, &frequent), 2, "memo hit agrees");

        // The triangle edge lives in gids 0 and 2 — neither owned.
        let mut rare = Graph::new();
        let a = rare.add_vertex(2);
        let b = rare.add_vertex(0);
        rare.add_edge(a, b, 12).unwrap();
        assert_eq!(engine.owned_support_of(&ep, &rare), 0);
        assert_eq!(engine.support_of(&ep, &rare).0, 2);

        assert_eq!(engine.owned_gids(), Some(&[1, 3][..]));
        let status = engine.handle(&Request::Status { report: false });
        assert_eq!(status.field("owned_graphs").and_then(JsonValue::as_num), Some(2));

        // Single-process mode: no owned set means every gid counts.
        let dir2 = tempfile::tempdir().unwrap();
        let (single, _) = ServeEngine::boot(Some(&db), dir2.path(), &cfg()).unwrap();
        let ep2 = single.current();
        assert_eq!(single.owned_support_of(&ep2, &frequent), 4);
        assert_eq!(single.owned_gids(), None);
    }

    #[test]
    fn epoch_commit_waits_for_the_seq_and_is_monotone() {
        let dir = tempfile::tempdir().unwrap();
        let db = small_db();
        let (engine, _) = ServeEngine::boot(Some(&db), dir.path(), &cfg()).unwrap();
        assert_eq!(engine.global_epoch(), 0);
        let ops = vec![DbUpdate { gid: 0, update: GraphUpdate::RelabelVertex { v: 0, label: 5 } }];
        let seq = engine.submit_window(&ops).unwrap().seq;
        assert_eq!(engine.commit_epoch(5, seq), Ok(5));
        assert!(engine.current().epoch >= seq, "commit waited for application");
        // An older commit can never roll the epoch back.
        assert_eq!(engine.commit_epoch(3, 0), Ok(5));
        assert_eq!(engine.global_epoch(), 5);
        // A seq the journal never assigned is rejected, not hung on.
        assert!(matches!(engine.commit_epoch(9, 99), Err(UpdateError::Rejected(_))));
        let status = engine.handle(&Request::Status { report: false });
        assert_eq!(status.field("global_epoch").and_then(JsonValue::as_num), Some(5));
    }

    #[test]
    fn dry_run_validates_without_admitting() {
        let dir = tempfile::tempdir().unwrap();
        let db = small_db();
        let (engine, _) = ServeEngine::boot(Some(&db), dir.path(), &cfg()).unwrap();
        let bad = vec![DbUpdate { gid: 1, update: GraphUpdate::AddEdge { u: 0, v: 99, label: 1 } }];
        assert!(matches!(engine.validate_window(&bad), Err(UpdateError::Rejected(_))));
        // An out-of-range gid reports database bounds, not a vertex error.
        let bad_gid =
            vec![DbUpdate { gid: 9, update: GraphUpdate::RelabelVertex { v: 0, label: 7 } }];
        match engine.validate_window(&bad_gid) {
            Err(UpdateError::Rejected(msg)) => {
                assert_eq!(msg, "op 0: graph 9 out of range (4 graphs)");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        let good = vec![DbUpdate { gid: 1, update: GraphUpdate::RelabelVertex { v: 0, label: 7 } }];
        engine.validate_window(&good).unwrap();
        // Nothing admitted, journaled, or applied by either verdict.
        assert_eq!(engine.current().epoch, 0);
        assert_eq!(engine.telemetry().counters().get(Counter::WalBatchesAppended), 0);
        let resp =
            engine.handle(&Request::Update { ops: good, ack: AckMode::Applied, dry_run: true });
        assert_eq!(resp.field("valid").and_then(JsonValue::as_num), Some(1));
        assert_eq!(engine.current().epoch, 0);
    }

    #[test]
    fn support_batch_answers_in_request_order() {
        let dir = tempfile::tempdir().unwrap();
        let db = small_db();
        let mut config = cfg();
        config.owned = Some(vec![0, 2]);
        let (engine, _) = ServeEngine::boot(Some(&db), dir.path(), &config).unwrap();
        let mut frequent = Graph::new();
        let a = frequent.add_vertex(0);
        let b = frequent.add_vertex(1);
        frequent.add_edge(a, b, 10).unwrap();
        let mut rare = Graph::new();
        let a = rare.add_vertex(2);
        let b = rare.add_vertex(0);
        rare.add_edge(a, b, 12).unwrap();
        let resp = engine.handle(&Request::SupportBatch {
            graphs: vec![frequent.clone(), rare.clone()],
            owned: true,
        });
        let supports: Vec<u64> = resp
            .field("supports")
            .and_then(JsonValue::as_arr)
            .unwrap()
            .iter()
            .map(|v| v.as_num().unwrap())
            .collect();
        // Owned gids are 0 and 2: both hold the frequent edge and both
        // hold the triangle edge.
        assert_eq!(supports, vec![2, 2]);
        let full =
            engine.handle(&Request::SupportBatch { graphs: vec![frequent, rare], owned: false });
        let full: Vec<u64> = full
            .field("supports")
            .and_then(JsonValue::as_arr)
            .unwrap()
            .iter()
            .map(|v| v.as_num().unwrap())
            .collect();
        assert_eq!(full, vec![4, 2]);
    }

    #[test]
    fn durable_ack_windows_apply_in_order() {
        let dir = tempfile::tempdir().unwrap();
        let db = small_db();
        let (engine, _) = ServeEngine::boot(Some(&db), dir.path(), &cfg()).unwrap();
        let mut seqs = Vec::new();
        for round in 0..3u32 {
            let ops = vec![DbUpdate {
                gid: 0,
                update: GraphUpdate::RelabelVertex { v: 0, label: 20 + round },
            }];
            seqs.push(engine.submit_window(&ops).unwrap().seq);
        }
        assert_eq!(seqs, vec![1, 2, 3]);
        let summary = engine.wait_applied(3).unwrap();
        assert_eq!(summary.seq, 3);
        assert_eq!(engine.current().epoch, 3);
        assert_eq!(engine.current().db.graph(0).vlabel(0), 22);
        let counters = engine.telemetry().counters();
        assert_eq!(counters.get(Counter::EpochSwaps), 3);
        assert_eq!(counters.get(Counter::IngestWindows), 3);
        assert_eq!(counters.get(Counter::WalBatchesAppended), 3);
    }
}
