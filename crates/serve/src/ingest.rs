//! Streaming-ingest building blocks: window coalescing and the bounded
//! pending-window queue with back-pressure.
//!
//! # Coalescing laws
//!
//! An ingest *window* is one submitted update batch. Before the window is
//! validated and journaled, [`coalesce_window`] rewrites it into a
//! minimal equivalent sequence — the re-mine then sees the smallest diff:
//!
//! 1. **Last write wins** — relabel-after-relabel on the same vertex or
//!    edge keeps only the final write (at the later position).
//! 2. **Fold into the creator** — a relabel of a vertex/edge *created
//!    inside the window* is folded into the creating `add-vertex` /
//!    `add-edge` op's label field.
//! 3. **Cancellation** — a relabel chain whose final label equals the
//!    label the target entered the window with collapses to nothing
//!    (the add-then-revert of a vocabulary without deletes).
//!
//! Only relabels are ever dropped or folded, and only when their target
//! is verifiably in range, so ids are never renumbered (`add-*` ops stay
//! at their positions) and a window is rejected by the dry-run validator
//! exactly when the raw window would have been. Ops addressing invalid
//! targets are kept untouched for the validator to reject.
//!
//! # Back-pressure
//!
//! The pipeline bounds the number of *acked-but-unapplied* windows (the
//! staleness bound): once `max_pending` windows sit between the durable
//! WAL tip and the served epoch, new submissions are shed with a
//! `backpressure` protocol reply — distinct from the connection-level
//! `overloaded` shed — and counted under `ingest_backpressure`.

use std::collections::BTreeMap;

use graphmine_graph::{DbUpdate, GraphDb, GraphUpdate};
use rustc_hash::FxHashMap;

use crate::engine::UpdateSummary;

/// Knobs of the streaming ingest pipeline.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Staleness bound: maximum acked-but-unapplied windows before new
    /// submissions are shed with `backpressure`.
    pub max_pending: usize,
    /// Coalesce each window before validation (see module docs).
    pub coalesce: bool,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig { max_pending: 8, coalesce: true }
    }
}

/// Which op created a window-local vertex/edge, and which label field of
/// that op a later relabel folds into.
#[derive(Debug, Clone, Copy)]
#[allow(clippy::enum_variant_names)]
enum Creator {
    /// `add-vertex` at this index created the vertex (fold into `label`).
    VertexOp(usize),
    /// `add-edge` at this index created the edge (fold into `label`).
    EdgeOp(usize),
    /// `add-vertex` at this index created the attaching edge (fold into
    /// `elabel`).
    AttachOp(usize),
}

/// Per-target coalescing state.
struct TargetState {
    /// Label the target carries entering the window (base label, or the
    /// creating op's current label after folds).
    origin: u32,
    /// Index of the currently kept relabel of this target, if any.
    last_relabel: Option<usize>,
    /// Creating op for window-local targets.
    creator: Option<Creator>,
}

impl TargetState {
    fn base(origin: u32) -> Self {
        TargetState { origin, last_relabel: None, creator: None }
    }

    fn created(origin: u32, creator: Creator) -> Self {
        TargetState { origin, last_relabel: None, creator: Some(creator) }
    }
}

/// Rewrites one ingest window into a minimal equivalent op sequence
/// against base database `db` (see the module docs for the laws).
///
/// Applying the returned sequence to `db` yields the same database as
/// applying `ops`, and it is rejected by validation exactly when `ops`
/// would be.
pub fn coalesce_window(db: &GraphDb, ops: &[DbUpdate]) -> Vec<DbUpdate> {
    let mut kept: Vec<Option<DbUpdate>> = ops.iter().map(|op| Some(*op)).collect();
    // Window-local vertex/edge counts per touched graph.
    let mut vcount: FxHashMap<u32, u32> = FxHashMap::default();
    let mut ecount: FxHashMap<u32, u32> = FxHashMap::default();
    let mut verts: FxHashMap<(u32, u32), TargetState> = FxHashMap::default();
    let mut edges: FxHashMap<(u32, u32), TargetState> = FxHashMap::default();

    for (i, op) in ops.iter().enumerate() {
        let gid = op.gid;
        if gid as usize >= db.len() {
            continue; // kept untouched; validation rejects the window
        }
        let g = db.graph(gid);
        let base_vc = g.vertex_count() as u32;
        let base_ec = g.edge_count() as u32;
        let vc = *vcount.entry(gid).or_insert(base_vc);
        let ec = *ecount.entry(gid).or_insert(base_ec);
        match op.update {
            GraphUpdate::RelabelVertex { v, label } => {
                if v >= vc {
                    continue; // out of range: validator's business
                }
                let st = verts.entry((gid, v)).or_insert_with(|| TargetState::base(g.vlabel(v)));
                coalesce_relabel(&mut kept, st, i, label);
            }
            GraphUpdate::RelabelEdge { e, label } => {
                if e >= ec {
                    continue;
                }
                let st = edges.entry((gid, e)).or_insert_with(|| TargetState::base(g.edge(e).2));
                coalesce_relabel(&mut kept, st, i, label);
            }
            GraphUpdate::AddEdge { u, v, label } => {
                // Structurally plausible adds claim their id; anything the
                // validator would reject (range, self-loop, duplicate)
                // rejects the whole window with the op kept in place.
                if u >= vc || v >= vc || u == v {
                    continue;
                }
                edges.insert((gid, ec), TargetState::created(label, Creator::EdgeOp(i)));
                ecount.insert(gid, ec + 1);
            }
            GraphUpdate::AddVertex { label, attach_to, elabel } => {
                if attach_to >= vc {
                    continue;
                }
                verts.insert((gid, vc), TargetState::created(label, Creator::VertexOp(i)));
                edges.insert((gid, ec), TargetState::created(elabel, Creator::AttachOp(i)));
                vcount.insert(gid, vc + 1);
                ecount.insert(gid, ec + 1);
            }
        }
    }

    kept.into_iter().flatten().collect()
}

/// Applies the three coalescing laws to one relabel op (vertex or edge —
/// the target's [`TargetState`] disambiguates) at index `i` writing
/// `label`.
fn coalesce_relabel(kept: &mut [Option<DbUpdate>], st: &mut TargetState, i: usize, label: u32) {
    // Law 1: an earlier relabel of the same target is superseded.
    let superseded = st.last_relabel.take();
    if let Some(j) = superseded {
        kept[j] = None;
    }
    // Armed mutant: treat every superseding write as if the whole chain
    // cancelled, dropping a meaningful final write. The oracle's
    // coalesce-equivalence check must catch the divergence.
    #[cfg(feature = "fault-injection")]
    if superseded.is_some()
        && graphmine_graph::fault::armed(graphmine_graph::fault::Fault::SkipCancelledUpdate)
    {
        kept[i] = None;
        return;
    }
    if label == st.origin {
        // Law 3: the chain lands back on the origin label — nothing to do.
        kept[i] = None;
    } else if let Some(creator) = st.creator {
        // Law 2: fold into the creating add op's label field.
        kept[i] = None;
        let (idx, slot) = match creator {
            Creator::VertexOp(c) | Creator::EdgeOp(c) => (c, false),
            Creator::AttachOp(c) => (c, true),
        };
        let created = kept[idx].as_mut().expect("creating add ops are never dropped");
        match &mut created.update {
            GraphUpdate::AddVertex { label: l, elabel, .. } => {
                *(if slot { elabel } else { l }) = label;
            }
            GraphUpdate::AddEdge { label: l, .. } => *l = label,
            _ => unreachable!("creator is always an add op"),
        }
        st.origin = label;
    } else {
        st.last_relabel = Some(i);
    }
}

/// The pending-window queue between submitters and the applier thread.
///
/// Windows are admitted (validated against `tail`, applied to it, and
/// handed to the WAL) under the queue lock, then applied to the mining
/// state strictly in sequence order by the applier.
pub(crate) struct IngestQueue {
    /// The database with every *admitted* window applied — ahead of the
    /// served epoch by the windows still in `windows`. Admission
    /// validates against this, so seq order equals validation order.
    pub tail: GraphDb,
    /// Admitted windows not yet applied to the mining state, by seq.
    pub windows: BTreeMap<u64, Vec<DbUpdate>>,
    /// Highest seq folded into the served epoch.
    pub applied_seq: u64,
    /// Per-window outcomes for `ack: applied` waiters (bounded; see
    /// [`IngestQueue::record_summary`]).
    pub summaries: BTreeMap<u64, UpdateSummary>,
    /// Sticky pipeline failure (journal or apply); set once, fatal.
    pub failed: Option<String>,
    /// Applier shutdown flag.
    pub stop: bool,
}

impl IngestQueue {
    pub(crate) fn new(tail: GraphDb, applied_seq: u64) -> Self {
        IngestQueue {
            tail,
            windows: BTreeMap::new(),
            applied_seq,
            summaries: BTreeMap::new(),
            failed: None,
            stop: false,
        }
    }

    /// Records a window's outcome, keeping the map bounded: durable-ack
    /// submitters never collect their summaries, so old entries are
    /// pruned from the front.
    pub(crate) fn record_summary(&mut self, s: UpdateSummary) {
        self.summaries.insert(s.seq, s);
        while self.summaries.len() > 256 {
            let oldest = *self.summaries.keys().next().expect("non-empty");
            self.summaries.remove(&oldest);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmine_graph::{apply_all, Graph};

    fn base_db() -> GraphDb {
        (0..2)
            .map(|_| {
                let mut g = Graph::new();
                let a = g.add_vertex(0);
                let b = g.add_vertex(1);
                let c = g.add_vertex(2);
                g.add_edge(a, b, 10).unwrap();
                g.add_edge(b, c, 11).unwrap();
                g
            })
            .collect()
    }

    fn rv(gid: u32, v: u32, label: u32) -> DbUpdate {
        DbUpdate { gid, update: GraphUpdate::RelabelVertex { v, label } }
    }

    fn re(gid: u32, e: u32, label: u32) -> DbUpdate {
        DbUpdate { gid, update: GraphUpdate::RelabelEdge { e, label } }
    }

    /// Raw and coalesced application end on identical databases.
    fn assert_equivalent(db: &GraphDb, ops: &[DbUpdate]) -> Vec<DbUpdate> {
        let coalesced = coalesce_window(db, ops);
        let mut raw = db.clone();
        apply_all(&mut raw, ops).unwrap();
        let mut co = db.clone();
        apply_all(&mut co, &coalesced).unwrap();
        for gid in 0..raw.len() as u32 {
            let (a, b) = (raw.graph(gid), co.graph(gid));
            assert_eq!(a.vlabels(), b.vlabels(), "graph {gid} vertex labels");
            assert_eq!(a.edge_count(), b.edge_count(), "graph {gid} edge count");
            for e in 0..a.edge_count() as u32 {
                assert_eq!(a.edge(e), b.edge(e), "graph {gid} edge {e}");
            }
        }
        coalesced
    }

    #[test]
    fn last_write_wins_on_vertices_and_edges() {
        let db = base_db();
        let ops = [rv(0, 1, 7), rv(0, 1, 8), rv(0, 1, 9), re(1, 0, 20), re(1, 0, 21)];
        let co = assert_equivalent(&db, &ops);
        assert_eq!(co, vec![rv(0, 1, 9), re(1, 0, 21)]);
    }

    #[test]
    fn relabel_chain_back_to_origin_cancels() {
        let db = base_db();
        let ops = [rv(0, 2, 9), rv(0, 2, 2), re(0, 1, 99), re(0, 1, 11)];
        let co = assert_equivalent(&db, &ops);
        assert!(co.is_empty(), "chains landing on the origin label vanish: {co:?}");
    }

    #[test]
    fn noop_relabel_is_dropped() {
        let db = base_db();
        let co = assert_equivalent(&db, &[rv(0, 0, 0), re(1, 1, 11)]);
        assert!(co.is_empty());
    }

    #[test]
    fn relabel_folds_into_creating_add_ops() {
        let db = base_db();
        let ops = [
            DbUpdate {
                gid: 0,
                update: GraphUpdate::AddVertex { label: 5, attach_to: 0, elabel: 7 },
            },
            rv(0, 3, 6), // relabel the window-created vertex
            re(0, 2, 8), // relabel the window-created attach edge
            DbUpdate { gid: 0, update: GraphUpdate::AddEdge { u: 1, v: 3, label: 30 } },
            re(0, 3, 31), // relabel the window-created edge
        ];
        let co = assert_equivalent(&db, &ops);
        assert_eq!(
            co,
            vec![
                DbUpdate {
                    gid: 0,
                    update: GraphUpdate::AddVertex { label: 6, attach_to: 0, elabel: 8 }
                },
                DbUpdate { gid: 0, update: GraphUpdate::AddEdge { u: 1, v: 3, label: 31 } },
            ]
        );
    }

    #[test]
    fn fold_then_revert_to_creation_label_cancels() {
        let db = base_db();
        let ops = [
            DbUpdate {
                gid: 1,
                update: GraphUpdate::AddVertex { label: 5, attach_to: 2, elabel: 7 },
            },
            rv(1, 3, 6),
            rv(1, 3, 5), // back to the creation label — both relabels vanish
        ];
        let co = assert_equivalent(&db, &ops);
        assert_eq!(
            co,
            vec![DbUpdate {
                gid: 1,
                update: GraphUpdate::AddVertex { label: 5, attach_to: 2, elabel: 7 }
            }]
        );
    }

    #[test]
    fn invalid_targets_are_kept_for_the_validator() {
        let db = base_db();
        // Out-of-range graph, vertex, and edge: nothing is dropped, so the
        // dry-run validator rejects the window exactly as it would raw.
        for ops in [
            vec![rv(9, 0, 1), rv(0, 1, 7)],
            vec![rv(0, 99, 1)],
            vec![re(0, 99, 1)],
            vec![DbUpdate { gid: 0, update: GraphUpdate::AddEdge { u: 0, v: 0, label: 1 } }],
        ] {
            let co = coalesce_window(&db, &ops);
            assert_eq!(co, ops, "invalid window must pass through untouched");
        }
    }

    #[test]
    fn interleaved_targets_keep_relative_order() {
        let db = base_db();
        let ops = [rv(0, 0, 5), rv(1, 0, 6), rv(0, 0, 7), re(0, 0, 20)];
        let co = assert_equivalent(&db, &ops);
        assert_eq!(co, vec![rv(1, 0, 6), rv(0, 0, 7), re(0, 0, 20)]);
    }
}
