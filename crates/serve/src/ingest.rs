//! Streaming-ingest building blocks: window coalescing and the bounded
//! pending-window queue with back-pressure.
//!
//! # Coalescing laws
//!
//! An ingest *window* is one submitted update batch. Before the window is
//! validated and journaled, [`coalesce_window`] rewrites it into a
//! minimal equivalent sequence — the re-mine then sees the smallest diff:
//!
//! 1. **Last write wins** — relabel-after-relabel on the same vertex or
//!    edge keeps only the final write (at the later position).
//! 2. **Fold into the creator** — a relabel of a vertex/edge *created
//!    inside the window* is folded into the creating `add-vertex` /
//!    `add-edge` op's label field.
//! 3. **Cancellation** — a relabel chain whose final label equals the
//!    label the target entered the window with collapses to nothing
//!    (the add-then-revert of a vocabulary without deletes).
//! 4. **Tail cancellation** — a delete whose target was created inside
//!    the window *and* sits at the top of the id space (so the delete is
//!    a pure pop, never a swap-remove renumbering) cancels against its
//!    creating add op; relabels folded into that creator die with it.
//!    For `delete-vertex` this additionally requires the vertex's attach
//!    edge to be the top edge, so the cascade is exactly that pop.
//!
//! Ops are only dropped or folded when their target is verifiably in
//! range and the rewrite provably preserves every surviving id, so a
//! window is rejected by the dry-run validator exactly when the raw
//! window would have been. Ops addressing invalid targets are kept
//! untouched for the validator to reject. A delete that is *not* a pure
//! pop renumbers ids (swap-remove moves the highest id into the hole),
//! which would invalidate every id the coalescer has tracked for that
//! graph — such deletes pass through untouched and turn coalescing off
//! for the rest of the window's ops on that graph.
//!
//! # Back-pressure
//!
//! The pipeline bounds the number of *acked-but-unapplied* windows (the
//! staleness bound): once `max_pending` windows sit between the durable
//! WAL tip and the served epoch, new submissions are shed with a
//! `backpressure` protocol reply — distinct from the connection-level
//! `overloaded` shed — and counted under `ingest_backpressure`.

use std::collections::BTreeMap;

use graphmine_graph::{DbUpdate, Graph, GraphDb, GraphError, GraphUpdate};
use rustc_hash::{FxHashMap, FxHashSet};

use crate::engine::UpdateSummary;

/// Knobs of the streaming ingest pipeline.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Staleness bound: maximum acked-but-unapplied windows before new
    /// submissions are shed with `backpressure`.
    pub max_pending: usize,
    /// Coalesce each window before validation (see module docs).
    pub coalesce: bool,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig { max_pending: 8, coalesce: true }
    }
}

/// Which op created a window-local vertex/edge, and which label field of
/// that op a later relabel folds into.
#[derive(Debug, Clone, Copy)]
#[allow(clippy::enum_variant_names)]
enum Creator {
    /// `add-vertex` at this index created the vertex (fold into `label`).
    VertexOp(usize),
    /// `add-edge` at this index created the edge (fold into `label`).
    EdgeOp(usize),
    /// `add-vertex` at this index created the attaching edge (fold into
    /// `elabel`).
    AttachOp(usize),
}

/// Per-target coalescing state.
struct TargetState {
    /// Label the target carries entering the window (base label, or the
    /// creating op's current label after folds).
    origin: u32,
    /// Index of the currently kept relabel of this target, if any.
    last_relabel: Option<usize>,
    /// Creating op for window-local targets.
    creator: Option<Creator>,
}

impl TargetState {
    fn base(origin: u32) -> Self {
        TargetState { origin, last_relabel: None, creator: None }
    }

    fn created(origin: u32, creator: Creator) -> Self {
        TargetState { origin, last_relabel: None, creator: Some(creator) }
    }
}

/// Rewrites one ingest window into a minimal equivalent op sequence
/// against base database `db` (see the module docs for the laws).
///
/// Applying the returned sequence to `db` yields the same database as
/// applying `ops`, and it is rejected by validation exactly when `ops`
/// would be.
pub fn coalesce_window(db: &GraphDb, ops: &[DbUpdate]) -> Vec<DbUpdate> {
    let mut kept: Vec<Option<DbUpdate>> = ops.iter().map(|op| Some(*op)).collect();
    // Window-local vertex/edge counts per touched graph.
    let mut vcount: FxHashMap<u32, u32> = FxHashMap::default();
    let mut ecount: FxHashMap<u32, u32> = FxHashMap::default();
    let mut verts: FxHashMap<(u32, u32), TargetState> = FxHashMap::default();
    let mut edges: FxHashMap<(u32, u32), TargetState> = FxHashMap::default();
    // Graphs hit by a swap-remove delete: tracked ids are stale, so the
    // rest of the window's ops on them pass through untouched.
    let mut dirty: FxHashSet<u32> = FxHashSet::default();

    for (i, op) in ops.iter().enumerate() {
        let gid = op.gid;
        if gid as usize >= db.len() {
            continue; // kept untouched; validation rejects the window
        }
        if dirty.contains(&gid) {
            continue;
        }
        let g = db.graph(gid);
        let base_vc = g.vertex_count() as u32;
        let base_ec = g.edge_count() as u32;
        let vc = *vcount.entry(gid).or_insert(base_vc);
        let ec = *ecount.entry(gid).or_insert(base_ec);
        match op.update {
            GraphUpdate::RelabelVertex { v, label } => {
                if v >= vc {
                    continue; // out of range: validator's business
                }
                let st = verts.entry((gid, v)).or_insert_with(|| TargetState::base(g.vlabel(v)));
                coalesce_relabel(&mut kept, st, i, label);
            }
            GraphUpdate::RelabelEdge { e, label } => {
                if e >= ec {
                    continue;
                }
                let st = edges.entry((gid, e)).or_insert_with(|| TargetState::base(g.edge(e).2));
                coalesce_relabel(&mut kept, st, i, label);
            }
            GraphUpdate::AddEdge { u, v, label } => {
                // Structurally plausible adds claim their id; anything the
                // validator would reject (range, self-loop, duplicate)
                // rejects the whole window with the op kept in place.
                if u >= vc || v >= vc || u == v {
                    continue;
                }
                edges.insert((gid, ec), TargetState::created(label, Creator::EdgeOp(i)));
                ecount.insert(gid, ec + 1);
            }
            GraphUpdate::AddVertex { label, attach_to, elabel } => {
                if attach_to >= vc {
                    continue;
                }
                verts.insert((gid, vc), TargetState::created(label, Creator::VertexOp(i)));
                edges.insert((gid, ec), TargetState::created(elabel, Creator::AttachOp(i)));
                vcount.insert(gid, vc + 1);
                ecount.insert(gid, ec + 1);
            }
            GraphUpdate::DeleteEdge { e } => {
                if e >= ec {
                    continue; // out of range: validator's business
                }
                if e + 1 != ec {
                    // Swap-remove moves edge ec-1 into slot e: every
                    // tracked edge id for this graph is now stale.
                    dirty.insert(gid);
                    continue;
                }
                // Top edge: the delete is a pure pop and no id moves.
                let st = edges.remove(&(gid, e));
                if let Some(Creator::EdgeOp(c)) = st.as_ref().and_then(|s| s.creator) {
                    // Law 4: add-then-delete of a window-created edge
                    // cancels outright.
                    kept[c] = None;
                    kept[i] = None;
                } else if let Some(j) = st.and_then(|s| s.last_relabel) {
                    // Relabeling an edge the window then deletes is
                    // dead work; the delete itself stays.
                    kept[j] = None;
                }
                ecount.insert(gid, ec - 1);
            }
            GraphUpdate::DeleteVertex { v } => {
                if v >= vc {
                    continue;
                }
                let vcreator = verts.get(&(gid, v)).and_then(|s| s.creator);
                let top_edge = ec
                    .checked_sub(1)
                    .and_then(|top| edges.get(&(gid, top)))
                    .and_then(|s| s.creator);
                let cancels = v + 1 == vc
                    && matches!((vcreator, top_edge),
                        (Some(Creator::VertexOp(c)), Some(Creator::AttachOp(a))) if c == a);
                if cancels {
                    // Law 4: the vertex and its attach edge both sit at
                    // the top of the id space, so the cascade is exactly
                    // two pops — cancel against the creating add-vertex.
                    let Some(Creator::VertexOp(c)) = vcreator else { unreachable!() };
                    kept[c] = None;
                    kept[i] = None;
                    verts.remove(&(gid, v));
                    edges.remove(&(gid, ec - 1));
                    vcount.insert(gid, vc - 1);
                    ecount.insert(gid, ec - 1);
                } else {
                    // The cascade deletes an unknown set of incident
                    // edges and swap-removes renumber ids.
                    dirty.insert(gid);
                }
            }
        }
    }

    kept.into_iter().flatten().collect()
}

/// Applies the three coalescing laws to one relabel op (vertex or edge —
/// the target's [`TargetState`] disambiguates) at index `i` writing
/// `label`.
fn coalesce_relabel(kept: &mut [Option<DbUpdate>], st: &mut TargetState, i: usize, label: u32) {
    // Law 1: an earlier relabel of the same target is superseded.
    let superseded = st.last_relabel.take();
    if let Some(j) = superseded {
        kept[j] = None;
    }
    // Armed mutant: treat every superseding write as if the whole chain
    // cancelled, dropping a meaningful final write. The oracle's
    // coalesce-equivalence check must catch the divergence.
    #[cfg(feature = "fault-injection")]
    if superseded.is_some()
        && graphmine_graph::fault::armed(graphmine_graph::fault::Fault::SkipCancelledUpdate)
    {
        kept[i] = None;
        return;
    }
    if label == st.origin {
        // Law 3: the chain lands back on the origin label — nothing to do.
        kept[i] = None;
    } else if let Some(creator) = st.creator {
        // Law 2: fold into the creating add op's label field.
        kept[i] = None;
        let (idx, slot) = match creator {
            Creator::VertexOp(c) | Creator::EdgeOp(c) => (c, false),
            Creator::AttachOp(c) => (c, true),
        };
        let created = kept[idx].as_mut().expect("creating add ops are never dropped");
        match &mut created.update {
            GraphUpdate::AddVertex { label: l, elabel, .. } => {
                *(if slot { elabel } else { l }) = label;
            }
            GraphUpdate::AddEdge { label: l, .. } => *l = label,
            _ => unreachable!("creator is always an add op"),
        }
        st.origin = label;
    } else {
        st.last_relabel = Some(i);
    }
}

/// Which id space a tracked relabel origin lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum TargetKind {
    Vertex,
    Edge,
}

/// Vertices and edges a live window created, by their *current* ids
/// (fixed up whenever a swap-remove delete renumbers the graph).
#[derive(Debug, Default)]
struct WindowEntities {
    vertices: Vec<(u32, u32)>,
    edges: Vec<(u32, u32)>,
}

/// Bookkeeping for sliding-window (`--window N`) serving mode: what each
/// live window did to the database, precise enough to synthesize the
/// *inverse* batch that erases the window when it falls off the horizon.
///
/// # The base-id-stability contract
///
/// Windowed validation ([`WindowTracker::validate_window`]) only admits
/// ops whose targets are **base entities** (present in the boot
/// snapshot) or entities created by the *same* window; deletes may only
/// target same-window entities. Two structural facts follow:
///
/// * Base ids never move. A swap-remove relocates the highest id, and
///   with only window-created entities deletable the highest id is
///   always itself window-created (ids grow past the base counts), so
///   label-restore undos can hold base ids forever.
/// * Window-created entity ids *do* move, but only when a delete fires —
///   and every removal record is observed here, so tracked ids are
///   patched in lockstep ([`WindowTracker::remap`]-style fixups).
///
/// # Expiry
///
/// The inverse batch for the oldest window is, in order: label restores
/// for base targets whose **last** writer is the expiring window
/// (restoring the label the target had before any live window touched
/// it), then `delete-edge` for each surviving created edge, then
/// `delete-vertex` for each surviving created vertex — deletes in
/// descending id order per graph, so each op's id is still current when
/// it applies (a swap-remove only moves ids from above). Cross-window
/// references being rejected at admission guarantees the cascades are
/// empty and no other window's work is disturbed.
pub(crate) struct WindowTracker {
    /// Per-graph vertex counts of the boot snapshot.
    base_vcount: Vec<u32>,
    /// Per-graph edge counts of the boot snapshot.
    base_ecount: Vec<u32>,
    /// Live (unexpired) windows by seq.
    windows: BTreeMap<u64, WindowEntities>,
    /// Relabeled base targets: `(gid, kind, id)` → (label before any
    /// live window wrote it, seq of the last live writer).
    origins: FxHashMap<(u32, TargetKind, u32), (u32, u64)>,
}

impl WindowTracker {
    pub(crate) fn new(base: &GraphDb) -> Self {
        WindowTracker {
            base_vcount: base.iter().map(|(_, g)| g.vertex_count() as u32).collect(),
            base_ecount: base.iter().map(|(_, g)| g.edge_count() as u32).collect(),
            windows: BTreeMap::new(),
            origins: FxHashMap::default(),
        }
    }

    /// Live windows not yet expired.
    pub(crate) fn live_count(&self) -> usize {
        self.windows.len()
    }

    /// Strict windowed admission: every referenced id must be a base
    /// entity or created by this very window, and deletes may only
    /// target same-window entities. On top of that, the whole batch is
    /// dry-run applied like the plain validator, so nothing can fail
    /// mid-application.
    pub(crate) fn validate_window(&self, db: &GraphDb, ops: &[DbUpdate]) -> Result<(), String> {
        let mut scratch: FxHashMap<u32, Graph> = FxHashMap::default();
        let mut starts: FxHashMap<u32, (u32, u32)> = FxHashMap::default();
        for (i, up) in ops.iter().enumerate() {
            let gid = up.gid;
            if (gid as usize) >= db.len() {
                return Err(format!("op {i}: graph {gid} out of range ({} graphs)", db.len()));
            }
            let &mut (sv, se) = starts.entry(gid).or_insert_with(|| {
                let g = db.graph(gid);
                (g.vertex_count() as u32, g.edge_count() as u32)
            });
            let bv = self.base_vcount[gid as usize];
            let be = self.base_ecount[gid as usize];
            let fail = |what: String| Err(format!("op {i}: windowed mode: {what}"));
            let check_v = |v: u32| {
                if v >= bv && v < sv {
                    fail(format!("vertex {v} belongs to an earlier live window"))
                } else {
                    Ok(())
                }
            };
            let check_e = |e: u32| {
                if e >= be && e < se {
                    fail(format!("edge {e} belongs to an earlier live window"))
                } else {
                    Ok(())
                }
            };
            match up.update {
                GraphUpdate::RelabelVertex { v, .. } => check_v(v)?,
                GraphUpdate::RelabelEdge { e, .. } => check_e(e)?,
                GraphUpdate::AddEdge { u, v, .. } => {
                    check_v(u)?;
                    check_v(v)?;
                }
                GraphUpdate::AddVertex { attach_to, .. } => check_v(attach_to)?,
                GraphUpdate::DeleteEdge { e } => {
                    if e < be {
                        fail(format!("cannot delete base edge {e}"))?;
                    } else if e < se {
                        fail(format!("cannot delete edge {e} of an earlier live window"))?;
                    }
                }
                GraphUpdate::DeleteVertex { v } => {
                    if v < bv {
                        fail(format!("cannot delete base vertex {v}"))?;
                    } else if v < sv {
                        fail(format!("cannot delete vertex {v} of an earlier live window"))?;
                    }
                }
            }
            let g = scratch.entry(gid).or_insert_with(|| db.graph(gid).clone());
            up.update.apply(g).map_err(|e| format!("op {i}: {e}"))?;
        }
        Ok(())
    }

    /// Applies an admitted window to the tail, recording what it created
    /// and relabeled so it can be erased at expiry.
    ///
    /// # Errors
    ///
    /// Propagates the first failing op; the tail is then half-applied,
    /// exactly like `apply_all` — the engine poisons the pipeline.
    pub(crate) fn apply_and_track(
        &mut self,
        seq: u64,
        tail: &mut GraphDb,
        ops: &[DbUpdate],
    ) -> Result<(), GraphError> {
        self.windows.entry(seq).or_default();
        for op in ops {
            self.apply_op(tail, op, Some(seq))?;
        }
        Ok(())
    }

    /// Applies a window-expiry inverse batch to the tail (with id
    /// fixups for the surviving windows) and retires the expired
    /// window's records. Used both when the engine synthesizes the
    /// batch and when boot replays a journaled expiry frame.
    pub(crate) fn apply_expiry(
        &mut self,
        tail: &mut GraphDb,
        ops: &[DbUpdate],
        expired: u64,
    ) -> Result<(), GraphError> {
        for op in ops {
            self.apply_op(tail, op, None)?;
        }
        self.windows.remove(&expired);
        self.origins.retain(|_, &mut (_, writer)| writer != expired);
        Ok(())
    }

    /// The inverse batch erasing the oldest live window, plus that
    /// window's seq. Must be followed by [`WindowTracker::apply_expiry`]
    /// once the batch is journaled.
    pub(crate) fn synthesize_expiry(&self) -> (u64, Vec<DbUpdate>) {
        let (&expired, entities) =
            self.windows.iter().next().expect("synthesize_expiry on zero live windows");
        let mut ops = Vec::new();
        // Label restores first: base ids, untouched by the deletes below.
        let mut restores: Vec<(u32, TargetKind, u32, u32)> = self
            .origins
            .iter()
            .filter(|&(_, &(_, writer))| writer == expired)
            .map(|(&(gid, kind, id), &(label, _))| (gid, kind, id, label))
            .collect();
        restores.sort_unstable();
        for (gid, kind, id, label) in restores {
            let update = match kind {
                TargetKind::Vertex => GraphUpdate::RelabelVertex { v: id, label },
                TargetKind::Edge => GraphUpdate::RelabelEdge { e: id, label },
            };
            ops.push(DbUpdate { gid, update });
        }
        // Deletes in descending id order per graph: each swap-remove
        // only moves ids from above, so every later op's id holds.
        let mut edges = entities.edges.clone();
        edges.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        for (gid, e) in edges {
            ops.push(DbUpdate { gid, update: GraphUpdate::DeleteEdge { e } });
        }
        let mut vertices = entities.vertices.clone();
        vertices.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        for (gid, v) in vertices {
            ops.push(DbUpdate { gid, update: GraphUpdate::DeleteVertex { v } });
        }
        (expired, ops)
    }

    /// Applies one op to the tail. With `record = Some(seq)` the op is a
    /// live window's (created entities tracked, base-relabel origins
    /// recorded); with `None` it is an expiry op (no tracking — but
    /// delete fixups still run, they keep the *other* windows honest).
    fn apply_op(
        &mut self,
        tail: &mut GraphDb,
        op: &DbUpdate,
        record: Option<u64>,
    ) -> Result<(), GraphError> {
        let gid = op.gid;
        if (gid as usize) >= tail.len() {
            return Err(GraphError::GraphOutOfRange { graph: gid, len: tail.len() as u32 });
        }
        match op.update {
            GraphUpdate::RelabelVertex { v, .. } => {
                if let Some(seq) = record {
                    if v < self.base_vcount[gid as usize] {
                        let origin = tail.graph(gid).vlabel(v);
                        let entry = self
                            .origins
                            .entry((gid, TargetKind::Vertex, v))
                            .or_insert((origin, seq));
                        entry.1 = seq;
                    }
                }
                op.update.apply(tail.graph_mut(gid))?;
            }
            GraphUpdate::RelabelEdge { e, .. } => {
                if let Some(seq) = record {
                    if e < self.base_ecount[gid as usize] {
                        let origin = tail.graph(gid).edge(e).2;
                        let entry =
                            self.origins.entry((gid, TargetKind::Edge, e)).or_insert((origin, seq));
                        entry.1 = seq;
                    }
                }
                op.update.apply(tail.graph_mut(gid))?;
            }
            GraphUpdate::AddEdge { .. } => {
                let e = tail.graph(gid).edge_count() as u32;
                op.update.apply(tail.graph_mut(gid))?;
                if let Some(seq) = record {
                    self.window_mut(seq).edges.push((gid, e));
                }
            }
            GraphUpdate::AddVertex { .. } => {
                let g = tail.graph(gid);
                let (v, e) = (g.vertex_count() as u32, g.edge_count() as u32);
                op.update.apply(tail.graph_mut(gid))?;
                if let Some(seq) = record {
                    let w = self.window_mut(seq);
                    w.vertices.push((gid, v));
                    w.edges.push((gid, e));
                }
            }
            GraphUpdate::DeleteEdge { e } => {
                let removal = tail.graph_mut(gid).delete_edge(e)?;
                self.untrack_edge(gid, e);
                if let Some(from) = removal.moved {
                    self.remap_edge(gid, from, e);
                }
            }
            GraphUpdate::DeleteVertex { v } => {
                // The cascade mirrors Graph::delete_vertex: incident
                // edges go in descending id order, each a swap-remove
                // pulling the current last edge into the hole.
                let g = tail.graph(gid);
                let mut eids: Vec<u32> = g.neighbors(v).iter().map(|a| a.eid).collect();
                eids.sort_unstable_by(|a, b| b.cmp(a));
                let mut last = g.edge_count() as u32;
                let last_v = g.vertex_count() as u32 - 1;
                tail.graph_mut(gid).delete_vertex(v)?;
                for e in eids {
                    last -= 1;
                    self.untrack_edge(gid, e);
                    if e != last {
                        self.remap_edge(gid, last, e);
                    }
                }
                self.untrack_vertex(gid, v);
                if v != last_v {
                    self.remap_vertex(gid, last_v, v);
                }
            }
        }
        Ok(())
    }

    fn window_mut(&mut self, seq: u64) -> &mut WindowEntities {
        self.windows.get_mut(&seq).expect("apply_and_track inserted the window entry")
    }

    fn untrack_edge(&mut self, gid: u32, e: u32) {
        for w in self.windows.values_mut() {
            w.edges.retain(|&(g, id)| g != gid || id != e);
        }
    }

    fn untrack_vertex(&mut self, gid: u32, v: u32) {
        for w in self.windows.values_mut() {
            w.vertices.retain(|&(g, id)| g != gid || id != v);
        }
    }

    fn remap_edge(&mut self, gid: u32, from: u32, to: u32) {
        for w in self.windows.values_mut() {
            for slot in w.edges.iter_mut() {
                if slot.0 == gid && slot.1 == from {
                    slot.1 = to;
                }
            }
        }
    }

    fn remap_vertex(&mut self, gid: u32, from: u32, to: u32) {
        for w in self.windows.values_mut() {
            for slot in w.vertices.iter_mut() {
                if slot.0 == gid && slot.1 == from {
                    slot.1 = to;
                }
            }
        }
    }
}

/// The pending-window queue between submitters and the applier thread.
///
/// Windows are admitted (validated against `tail`, applied to it, and
/// handed to the WAL) under the queue lock, then applied to the mining
/// state strictly in sequence order by the applier.
pub(crate) struct IngestQueue {
    /// The database with every *admitted* window applied — ahead of the
    /// served epoch by the windows still in `windows`. Admission
    /// validates against this, so seq order equals validation order.
    pub tail: GraphDb,
    /// Admitted windows not yet applied to the mining state, by seq.
    pub windows: BTreeMap<u64, Vec<DbUpdate>>,
    /// Highest seq folded into the served epoch.
    pub applied_seq: u64,
    /// Per-window outcomes for `ack: applied` waiters (bounded; see
    /// [`IngestQueue::record_summary`]).
    pub summaries: BTreeMap<u64, UpdateSummary>,
    /// Sticky pipeline failure (journal or apply); set once, fatal.
    pub failed: Option<String>,
    /// Applier shutdown flag.
    pub stop: bool,
    /// Sliding-window bookkeeping; `Some` iff the engine runs with a
    /// retention window ([`crate::engine::EngineConfig::window`]).
    pub(crate) tracker: Option<WindowTracker>,
}

impl IngestQueue {
    pub(crate) fn new(tail: GraphDb, applied_seq: u64) -> Self {
        IngestQueue {
            tail,
            windows: BTreeMap::new(),
            applied_seq,
            summaries: BTreeMap::new(),
            failed: None,
            stop: false,
            tracker: None,
        }
    }

    /// Records a window's outcome, keeping the map bounded: durable-ack
    /// submitters never collect their summaries, so old entries are
    /// pruned from the front.
    pub(crate) fn record_summary(&mut self, s: UpdateSummary) {
        self.summaries.insert(s.seq, s);
        while self.summaries.len() > 256 {
            let oldest = *self.summaries.keys().next().expect("non-empty");
            self.summaries.remove(&oldest);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmine_graph::{apply_all, Graph};

    fn base_db() -> GraphDb {
        (0..2)
            .map(|_| {
                let mut g = Graph::new();
                let a = g.add_vertex(0);
                let b = g.add_vertex(1);
                let c = g.add_vertex(2);
                g.add_edge(a, b, 10).unwrap();
                g.add_edge(b, c, 11).unwrap();
                g
            })
            .collect()
    }

    fn rv(gid: u32, v: u32, label: u32) -> DbUpdate {
        DbUpdate { gid, update: GraphUpdate::RelabelVertex { v, label } }
    }

    fn re(gid: u32, e: u32, label: u32) -> DbUpdate {
        DbUpdate { gid, update: GraphUpdate::RelabelEdge { e, label } }
    }

    fn de(gid: u32, e: u32) -> DbUpdate {
        DbUpdate { gid, update: GraphUpdate::DeleteEdge { e } }
    }

    fn dv(gid: u32, v: u32) -> DbUpdate {
        DbUpdate { gid, update: GraphUpdate::DeleteVertex { v } }
    }

    /// Raw and coalesced application end on identical databases.
    fn assert_equivalent(db: &GraphDb, ops: &[DbUpdate]) -> Vec<DbUpdate> {
        let coalesced = coalesce_window(db, ops);
        let mut raw = db.clone();
        apply_all(&mut raw, ops).unwrap();
        let mut co = db.clone();
        apply_all(&mut co, &coalesced).unwrap();
        for gid in 0..raw.len() as u32 {
            let (a, b) = (raw.graph(gid), co.graph(gid));
            assert_eq!(a.vlabels(), b.vlabels(), "graph {gid} vertex labels");
            assert_eq!(a.edge_count(), b.edge_count(), "graph {gid} edge count");
            for e in 0..a.edge_count() as u32 {
                assert_eq!(a.edge(e), b.edge(e), "graph {gid} edge {e}");
            }
        }
        coalesced
    }

    #[test]
    fn last_write_wins_on_vertices_and_edges() {
        let db = base_db();
        let ops = [rv(0, 1, 7), rv(0, 1, 8), rv(0, 1, 9), re(1, 0, 20), re(1, 0, 21)];
        let co = assert_equivalent(&db, &ops);
        assert_eq!(co, vec![rv(0, 1, 9), re(1, 0, 21)]);
    }

    #[test]
    fn relabel_chain_back_to_origin_cancels() {
        let db = base_db();
        let ops = [rv(0, 2, 9), rv(0, 2, 2), re(0, 1, 99), re(0, 1, 11)];
        let co = assert_equivalent(&db, &ops);
        assert!(co.is_empty(), "chains landing on the origin label vanish: {co:?}");
    }

    #[test]
    fn noop_relabel_is_dropped() {
        let db = base_db();
        let co = assert_equivalent(&db, &[rv(0, 0, 0), re(1, 1, 11)]);
        assert!(co.is_empty());
    }

    #[test]
    fn relabel_folds_into_creating_add_ops() {
        let db = base_db();
        let ops = [
            DbUpdate {
                gid: 0,
                update: GraphUpdate::AddVertex { label: 5, attach_to: 0, elabel: 7 },
            },
            rv(0, 3, 6), // relabel the window-created vertex
            re(0, 2, 8), // relabel the window-created attach edge
            DbUpdate { gid: 0, update: GraphUpdate::AddEdge { u: 1, v: 3, label: 30 } },
            re(0, 3, 31), // relabel the window-created edge
        ];
        let co = assert_equivalent(&db, &ops);
        assert_eq!(
            co,
            vec![
                DbUpdate {
                    gid: 0,
                    update: GraphUpdate::AddVertex { label: 6, attach_to: 0, elabel: 8 }
                },
                DbUpdate { gid: 0, update: GraphUpdate::AddEdge { u: 1, v: 3, label: 31 } },
            ]
        );
    }

    #[test]
    fn fold_then_revert_to_creation_label_cancels() {
        let db = base_db();
        let ops = [
            DbUpdate {
                gid: 1,
                update: GraphUpdate::AddVertex { label: 5, attach_to: 2, elabel: 7 },
            },
            rv(1, 3, 6),
            rv(1, 3, 5), // back to the creation label — both relabels vanish
        ];
        let co = assert_equivalent(&db, &ops);
        assert_eq!(
            co,
            vec![DbUpdate {
                gid: 1,
                update: GraphUpdate::AddVertex { label: 5, attach_to: 2, elabel: 7 }
            }]
        );
    }

    #[test]
    fn add_edge_then_delete_at_top_cancels() {
        let db = base_db();
        let ops = [
            DbUpdate { gid: 0, update: GraphUpdate::AddEdge { u: 0, v: 2, label: 30 } },
            re(0, 2, 31), // relabel the doomed window edge: folds, then dies
            de(0, 2),
        ];
        let co = assert_equivalent(&db, &ops);
        assert!(co.is_empty(), "add-then-delete at the top must vanish: {co:?}");
    }

    #[test]
    fn add_vertex_then_delete_at_top_cancels() {
        let db = base_db();
        let ops = [
            DbUpdate {
                gid: 1,
                update: GraphUpdate::AddVertex { label: 5, attach_to: 0, elabel: 7 },
            },
            rv(1, 3, 6), // folds into the doomed creator
            dv(1, 3),
        ];
        let co = assert_equivalent(&db, &ops);
        assert!(co.is_empty(), "add-vertex-then-delete at the top must vanish: {co:?}");
    }

    #[test]
    fn delete_at_top_drops_pending_relabel_but_stays() {
        let db = base_db();
        let ops = [re(0, 1, 99), de(0, 1)];
        let co = assert_equivalent(&db, &ops);
        assert_eq!(co, vec![de(0, 1)], "relabel of a dying base edge is dead work");
    }

    #[test]
    fn swap_remove_delete_disables_coalescing_per_graph() {
        let db = base_db();
        // Graph 0 takes a non-top delete (edge 0 of 2): everything after
        // it on graph 0 passes through; graph 1 still coalesces.
        let ops = [de(0, 0), rv(0, 1, 7), rv(0, 1, 8), rv(1, 0, 5), rv(1, 0, 6)];
        let co = assert_equivalent(&db, &ops);
        assert_eq!(co, vec![de(0, 0), rv(0, 1, 7), rv(0, 1, 8), rv(1, 0, 6)]);
    }

    #[test]
    fn delete_vertex_with_extra_incident_edge_does_not_cancel() {
        let db = base_db();
        // The window vertex gains a second incident edge, so its attach
        // edge is no longer the top edge: the cascade is not a pure pop
        // and the whole chain passes through (still equivalent).
        let ops = [
            DbUpdate {
                gid: 0,
                update: GraphUpdate::AddVertex { label: 5, attach_to: 0, elabel: 7 },
            },
            DbUpdate { gid: 0, update: GraphUpdate::AddEdge { u: 1, v: 3, label: 8 } },
            dv(0, 3),
        ];
        let co = assert_equivalent(&db, &ops);
        assert_eq!(co, ops.to_vec());
    }

    #[test]
    fn invalid_targets_are_kept_for_the_validator() {
        let db = base_db();
        // Out-of-range graph, vertex, and edge: nothing is dropped, so the
        // dry-run validator rejects the window exactly as it would raw.
        for ops in [
            vec![rv(9, 0, 1), rv(0, 1, 7)],
            vec![rv(0, 99, 1)],
            vec![re(0, 99, 1)],
            vec![de(0, 99)],
            vec![dv(0, 99)],
            vec![DbUpdate { gid: 0, update: GraphUpdate::AddEdge { u: 0, v: 0, label: 1 } }],
        ] {
            let co = coalesce_window(&db, &ops);
            assert_eq!(co, ops, "invalid window must pass through untouched");
        }
    }

    #[test]
    fn interleaved_targets_keep_relative_order() {
        let db = base_db();
        let ops = [rv(0, 0, 5), rv(1, 0, 6), rv(0, 0, 7), re(0, 0, 20)];
        let co = assert_equivalent(&db, &ops);
        assert_eq!(co, vec![rv(1, 0, 6), rv(0, 0, 7), re(0, 0, 20)]);
    }

    fn av(gid: u32, label: u32, attach_to: u32, elabel: u32) -> DbUpdate {
        DbUpdate { gid, update: GraphUpdate::AddVertex { label, attach_to, elabel } }
    }

    fn ae(gid: u32, u: u32, v: u32, label: u32) -> DbUpdate {
        DbUpdate { gid, update: GraphUpdate::AddEdge { u, v, label } }
    }

    fn assert_same_db(a: &GraphDb, b: &GraphDb, ctx: &str) {
        assert_eq!(a.len(), b.len(), "{ctx}: graph count");
        for gid in 0..a.len() as u32 {
            let (ga, gb) = (a.graph(gid), b.graph(gid));
            assert_eq!(ga.vlabels(), gb.vlabels(), "{ctx}: graph {gid} vertex labels");
            assert_eq!(ga.edge_count(), gb.edge_count(), "{ctx}: graph {gid} edge count");
            for e in 0..ga.edge_count() as u32 {
                assert_eq!(ga.edge(e), gb.edge(e), "{ctx}: graph {gid} edge {e}");
            }
        }
    }

    /// Expiring every live window in order walks the tail back to the
    /// exact base database, through swap-remove fixups and last-writer
    /// relabel restores.
    #[test]
    fn tracker_expiry_round_trips_to_base() {
        let base = base_db();
        let mut tail = base.clone();
        let mut tr = WindowTracker::new(&base);
        // Window 1: relabel a base vertex, add an edge (gid 0 id 2).
        let w1 = [rv(0, 0, 50), ae(0, 0, 2, 30)];
        // Window 2: grow a pendant vertex (gid 0 vertex 3, edge 3).
        let w2 = [av(0, 7, 1, 8)];
        // Window 3: rewrite the same base vertex, add an edge on gid 1.
        let w3 = [rv(0, 0, 60), ae(1, 0, 2, 40)];
        for (seq, w) in [(1u64, &w1[..]), (2, &w2[..]), (3, &w3[..])] {
            tr.validate_window(&tail, w).unwrap();
            tr.apply_and_track(seq, &mut tail, w).unwrap();
        }
        assert_eq!(tr.live_count(), 3);

        // Expire window 1. Vertex 0's last writer is window 3, so no
        // restore yet; its edge 2 is swap-removed, pulling window 2's
        // edge 3 into slot 2 (the tracker must follow the move).
        let (expired, ops) = tr.synthesize_expiry();
        assert_eq!(expired, 1);
        assert_eq!(ops, vec![de(0, 2)]);
        tr.apply_expiry(&mut tail, &ops, expired).unwrap();
        let mut expect = base.clone();
        apply_all(&mut expect, &[w2[0], w3[0], w3[1]]).unwrap();
        assert_same_db(&tail, &expect, "after expiring window 1");

        // Expire window 2: its pendant edge now sits at the remapped id.
        let (expired, ops) = tr.synthesize_expiry();
        assert_eq!(expired, 2);
        assert_eq!(ops, vec![de(0, 2), dv(0, 3)]);
        tr.apply_expiry(&mut tail, &ops, expired).unwrap();

        // Expire window 3: vertex 0 restores to its pre-window-1 label
        // (the origin outlives intermediate writers), gid 1's edge pops.
        let (expired, ops) = tr.synthesize_expiry();
        assert_eq!(expired, 3);
        assert_eq!(ops, vec![rv(0, 0, 0), de(1, 2)]);
        tr.apply_expiry(&mut tail, &ops, expired).unwrap();
        assert_eq!(tr.live_count(), 0);
        assert_same_db(&tail, &base, "after expiring every window");
        assert!(tr.origins.is_empty(), "origin records must die with their last writer");
    }

    /// A window deleting its own additions leaves nothing to expire, and
    /// a vertex delete's cascade fixups keep later windows' ids honest.
    #[test]
    fn tracker_follows_delete_cascades_within_windows() {
        let base = base_db();
        let mut tail = base.clone();
        let mut tr = WindowTracker::new(&base);
        // Window 1: pendant vertex (attach edge 2), extra base-to-base
        // edge (id 3), then delete the vertex — the cascade swap-removes
        // its attach edge, pulling the extra edge from id 3 down to 2.
        let w1 = [av(0, 7, 1, 8), ae(0, 0, 2, 30), dv(0, 3)];
        tr.validate_window(&tail, &w1).unwrap();
        tr.apply_and_track(1, &mut tail, &w1).unwrap();
        // Window 2: relabel a base edge (restored at its expiry).
        let w2 = [re(0, 1, 99)];
        tr.validate_window(&tail, &w2).unwrap();
        tr.apply_and_track(2, &mut tail, &w2).unwrap();

        // Window 1's survivors: only the extra edge, now at id 2.
        let (expired, ops) = tr.synthesize_expiry();
        assert_eq!(expired, 1);
        assert_eq!(ops, vec![de(0, 2)]);
        tr.apply_expiry(&mut tail, &ops, expired).unwrap();

        let (expired, ops) = tr.synthesize_expiry();
        assert_eq!(expired, 2);
        assert_eq!(ops, vec![re(0, 1, 11)]);
        tr.apply_expiry(&mut tail, &ops, expired).unwrap();
        assert_same_db(&tail, &base, "after expiring both windows");
    }

    /// Windowed validation enjoys stricter rules than the plain dry-run:
    /// cross-window references and base deletes are rejected up front.
    #[test]
    fn tracker_validation_rejects_cross_window_and_base_deletes() {
        let base = base_db();
        let mut tail = base.clone();
        let mut tr = WindowTracker::new(&base);
        let w1 = [av(0, 7, 1, 8)];
        tr.apply_and_track(1, &mut tail, &w1).unwrap();

        let err = |ops: &[DbUpdate]| tr.validate_window(&tail, ops).unwrap_err();
        assert!(err(&[rv(0, 3, 5)]).contains("belongs to an earlier live window"));
        assert!(err(&[ae(0, 0, 3, 9)]).contains("belongs to an earlier live window"));
        assert!(err(&[de(0, 2)]).contains("earlier live window"));
        assert!(err(&[de(0, 0)]).contains("cannot delete base edge"));
        assert!(err(&[dv(0, 1)]).contains("cannot delete base vertex"));
        assert_eq!(err(&[rv(9, 0, 1)]), "op 0: graph 9 out of range (2 graphs)");
        // Same-window self-references and base relabels stay legal.
        tr.validate_window(&tail, &[av(0, 4, 0, 6), rv(0, 4, 5), dv(0, 4)]).unwrap();
        tr.validate_window(&tail, &[rv(0, 0, 41), re(1, 0, 42)]).unwrap();
    }
}
