//! A resident pattern-serving daemon for the partition-based miner.
//!
//! The paper's IncPartMiner is built for a *standing* database: mine
//! once, then fold update batches in incrementally. This crate turns
//! that into a long-lived service — mine at boot, keep `P(D)` warm in
//! memory, and answer pattern/support queries over a newline-delimited
//! JSON protocol while updates stream in:
//!
//! * [`ServeEngine`] — durable state machine: snapshot + write-ahead
//!   journal on `graphmine-storage`, warm-restart mining, and
//!   epoch-swapped immutable results ([`ResultEpoch`]) so readers never
//!   block behind an update;
//! * [`ingest`] — the streaming update pipeline: window
//!   [coalescing](ingest::coalesce_window), a bounded admission queue
//!   with `backpressure` shedding, group-committed durability, and an
//!   applier thread re-mining on the shared `graphmine-exec` pool;
//! * [`start`] / [`ServerHandle`] — the TCP front end: accept thread,
//!   bounded connection queue with explicit `overloaded` shedding, and
//!   a fixed worker pool (std threads only — no async runtime);
//! * [`protocol`] — the wire format;
//! * [`Client`] — a small blocking client for tools and tests, with
//!   jittered-backoff [`RetryPolicy`] retries on `backpressure`.
//!
//! An `update` is acknowledged only after its window is fsynced to the
//! journal (one group-commit barrier covers every concurrent window),
//! so `kill -9` after an ack never loses it: the next boot replays the
//! journal on top of the snapshot. See `docs/SERVICE.md` for the
//! protocol and operational details.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod client;
mod engine;
pub mod ingest;
pub mod protocol;
mod server;

pub use client::{Client, RetryPolicy};
pub use engine::{
    BootReport, EngineConfig, ResultEpoch, ServeEngine, StreamAck, SupportSource, UpdateError,
    UpdateSummary,
};
pub use ingest::{coalesce_window, IngestConfig};
pub use protocol::{AckMode, Request};
pub use server::{start, ServerConfig, ServerHandle};
