//! Wire protocol of the serving daemon: newline-delimited JSON.
//!
//! Every request is one JSON object on one line with a `"cmd"` field;
//! every response is one JSON object on one line with a `"status"` field
//! (`"ok"` or `"error"`). The JSON dialect is the telemetry crate's
//! subset — unsigned integers, strings, arrays, objects, `null`; no
//! floats or booleans — so flags are encoded as `0`/`1` integers.
//!
//! Requests:
//!
//! ```text
//! {"cmd":"status"}                   // add "report":1 for the full RunReport
//! {"cmd":"patterns","top":10,"min_support":3}      // both fields optional
//! {"cmd":"support","code":[[0,1,0,5,1],[1,2,1,5,0]]}
//! {"cmd":"support","graph":{"vertices":[0,1,0],"edges":[[0,1,5],[1,2,5]]}}
//! {"cmd":"support","code":[...],"owned":1}        // count owned gids only
//! {"cmd":"support-batch","codes":[[...],[...]],"owned":1}
//! {"cmd":"update","ops":[{"gid":3,"op":"add-edge","u":0,"v":6,"label":2}]}
//! {"cmd":"update","ack":"durable","ops":[...]}   // stream: ack at the fsync barrier
//! {"cmd":"update","dry_run":1,"ops":[...]}       // router 2PC: validate only
//! {"cmd":"epoch-commit","global":3,"seq":2}      // router 2PC: publish global epoch
//! {"cmd":"shutdown"}
//! ```
//!
//! A `code` is a list of DFS-code edges `[from, to, from_label,
//! edge_label, to_label]`; it does not have to be minimal — the server
//! canonicalizes. Update ops mirror the CLI text format
//! (`relabel-vertex`, `relabel-edge`, `add-edge`, `add-vertex`,
//! `delete-edge`, `delete-vertex`).
//!
//! An update with `"ack":"applied"` (the default) is answered once the
//! window is folded into the served epoch; `"ack":"durable"` answers at
//! the group-commit fsync barrier, before application. When the ingest
//! queue is full the server sheds the window with
//! `{"status":"error","error":"backpressure","pending":N}` — distinct
//! from `overloaded` (connection queue full) and from real errors:
//! nothing was admitted and the client should retry after a backoff.
//!
//! The `owned`/`support-batch`/`dry_run`/`epoch-commit` extensions serve
//! the scatter/gather router (`graphmine-router`): shards booted with an
//! owned-gid set answer owner-restricted counts (so gathered sums count
//! every graph exactly once), a dry-run update validates a window against
//! the journal tail without admitting it (2PC phase 0), and
//! `epoch-commit` waits for a prepared window to apply and then adopts
//! the router's published global epoch, which `status` reports alongside
//! the local one.

use graphmine_graph::{DbUpdate, DfsCode, Graph, GraphUpdate, Pattern, VLabel};
use graphmine_telemetry::JsonValue;

/// Patterns returned by a `patterns` request when `top` is omitted.
pub const DEFAULT_TOP: usize = 50;

/// When an `update` request is acknowledged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AckMode {
    /// Answer once the window is folded into the served epoch.
    #[default]
    Applied,
    /// Answer at the group-commit fsync barrier; application follows
    /// asynchronously, bounded by the server's staleness bound.
    Durable,
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Daemon and database overview, counters, optionally a full report.
    Status {
        /// Include the JSON [`graphmine_telemetry::RunReport`] dump.
        report: bool,
    },
    /// The current frequent patterns, most supported first.
    Patterns {
        /// Maximum number of patterns returned.
        top: usize,
        /// Only return patterns with at least this support.
        min_support: Option<u32>,
    },
    /// Exact support of a client-supplied pattern graph.
    Support {
        /// The pattern, already materialized and validated.
        graph: Graph,
        /// Restrict the count to the shard's owned gids.
        owned: bool,
    },
    /// Exact supports of several patterns in one round trip (router
    /// gather phase 2).
    SupportBatch {
        /// The patterns, in request order.
        graphs: Vec<Graph>,
        /// Restrict the counts to the shard's owned gids.
        owned: bool,
    },
    /// Apply an update batch through the incremental miner.
    Update {
        /// The updates, in application order.
        ops: Vec<DbUpdate>,
        /// Whether to ack at durability or after application.
        ack: AckMode,
        /// Validate against the journal tail without admitting (2PC
        /// phase 0); `ack` is ignored.
        dry_run: bool,
    },
    /// Adopt a router-published global epoch once the window acked as
    /// `seq` has been applied (2PC commit). `seq` 0 waits for nothing —
    /// used to republish the epoch to untouched or re-admitted shards.
    EpochCommit {
        /// The router's new global epoch.
        global: u64,
        /// Local journal seq the commit must wait for.
        seq: u64,
    },
    /// Stop the daemon (snapshot + journal truncation on the way out).
    Shutdown,
}

/// `true` when an optional `0`/`1` flag field is present and non-zero.
fn flag_field(value: &JsonValue, name: &str) -> bool {
    matches!(value.field(name), Some(JsonValue::Num(n)) if *n != 0)
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a human-readable message for malformed JSON, unknown commands,
/// or structurally invalid patterns/updates.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = JsonValue::parse(line).map_err(|e| format!("bad json: {e}"))?;
    let cmd = value
        .field("cmd")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "missing string field `cmd`".to_string())?;
    match cmd {
        "status" => Ok(Request::Status { report: flag_field(&value, "report") }),
        "patterns" => {
            let top = match value.field("top") {
                None | Some(JsonValue::Null) => DEFAULT_TOP,
                Some(v) => v.as_num().ok_or("field `top` must be an integer")? as usize,
            };
            let min_support = match value.field("min_support") {
                None | Some(JsonValue::Null) => None,
                Some(v) => Some(v.as_num().ok_or("field `min_support` must be an integer")? as u32),
            };
            Ok(Request::Patterns { top, min_support })
        }
        "support" => {
            let graph = match (value.field("code"), value.field("graph")) {
                (Some(code), None) => pattern_from_code_json(code)?,
                (None, Some(spec)) => pattern_from_graph_json(spec)?,
                _ => return Err("`support` needs exactly one of `code` or `graph`".to_string()),
            };
            Ok(Request::Support { graph, owned: flag_field(&value, "owned") })
        }
        "support-batch" => {
            let codes = value
                .field("codes")
                .and_then(JsonValue::as_arr)
                .ok_or("`support-batch` needs an array field `codes`")?;
            let graphs =
                codes.iter().map(pattern_from_code_json).collect::<Result<Vec<_>, String>>()?;
            Ok(Request::SupportBatch { graphs, owned: flag_field(&value, "owned") })
        }
        "update" => {
            let ops = value.field("ops").ok_or("missing field `ops`")?;
            let ack = match value.field("ack") {
                None | Some(JsonValue::Null) => AckMode::Applied,
                Some(JsonValue::Str(s)) if s == "applied" => AckMode::Applied,
                Some(JsonValue::Str(s)) if s == "durable" => AckMode::Durable,
                Some(_) => return Err("field `ack` must be \"applied\" or \"durable\"".to_string()),
            };
            Ok(Request::Update {
                ops: ops_from_json(ops)?,
                ack,
                dry_run: flag_field(&value, "dry_run"),
            })
        }
        "epoch-commit" => {
            let global = value
                .field("global")
                .and_then(JsonValue::as_num)
                .ok_or("`epoch-commit` needs an integer field `global`")?;
            let seq = match value.field("seq") {
                None | Some(JsonValue::Null) => 0,
                Some(v) => v.as_num().ok_or("field `seq` must be an integer")?,
            };
            Ok(Request::EpochCommit { global, seq })
        }
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown command `{other}`")),
    }
}

/// An `{"status":"ok", ...fields}` response.
pub fn ok_response(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    let mut obj = vec![("status".to_string(), JsonValue::Str("ok".to_string()))];
    obj.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
    JsonValue::Obj(obj)
}

/// An `{"status":"error","error":msg}` response.
pub fn error_response(msg: &str) -> JsonValue {
    JsonValue::Obj(vec![
        ("status".to_string(), JsonValue::Str("error".to_string())),
        ("error".to_string(), JsonValue::Str(msg.to_string())),
    ])
}

/// Serializes a DFS code as the wire's list of 5-tuples.
pub fn code_to_json(code: &DfsCode) -> JsonValue {
    JsonValue::Arr(
        code.0
            .iter()
            .map(|e| {
                JsonValue::Arr(vec![
                    JsonValue::Num(u64::from(e.from)),
                    JsonValue::Num(u64::from(e.to)),
                    JsonValue::Num(u64::from(e.from_label)),
                    JsonValue::Num(u64::from(e.edge_label)),
                    JsonValue::Num(u64::from(e.to_label)),
                ])
            })
            .collect(),
    )
}

/// Decodes a wire code (list of 5-tuples) back into a [`DfsCode`].
///
/// Shape-checks only — no minimality or connectivity validation. The
/// router uses this on codes produced by its own shards, where the graph
/// round trip of [`parse_request`]'s `support` arm would be wasted work;
/// anything structurally off still comes back as an error, never a panic.
///
/// # Errors
///
/// Returns a message for non-array input or malformed tuples.
pub fn code_from_json(value: &JsonValue) -> Result<DfsCode, String> {
    let edges = value.as_arr().ok_or("code must be an array of 5-tuples")?;
    let mut out = Vec::with_capacity(edges.len());
    for (i, e) in edges.iter().enumerate() {
        let t = e
            .as_arr()
            .filter(|t| t.len() == 5)
            .ok_or_else(|| format!("code edge {i}: expected a 5-tuple"))?;
        let mut nums = [0u32; 5];
        for (j, v) in t.iter().enumerate() {
            nums[j] = v
                .as_num()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| format!("code edge {i}: field {j} is not a u32"))?;
        }
        out.push(graphmine_graph::DfsEdge {
            from: nums[0],
            to: nums[1],
            from_label: nums[2],
            edge_label: nums[3],
            to_label: nums[4],
        });
    }
    Ok(DfsCode(out))
}

/// Serializes a pattern graph as the wire's `graph` spec
/// (`{"vertices":[label,...],"edges":[[u,v,label],...]}`), the client
/// side of the `support` request's `graph` form.
pub fn graph_to_json(g: &Graph) -> JsonValue {
    let vertices = g.vlabels().iter().map(|&l| JsonValue::Num(u64::from(l))).collect();
    let edges = g
        .edges()
        .map(|(_, u, v, l)| {
            JsonValue::Arr(vec![
                JsonValue::Num(u64::from(u)),
                JsonValue::Num(u64::from(v)),
                JsonValue::Num(u64::from(l)),
            ])
        })
        .collect();
    JsonValue::Obj(vec![
        ("vertices".to_string(), JsonValue::Arr(vertices)),
        ("edges".to_string(), JsonValue::Arr(edges)),
    ])
}

/// Serializes a pattern as `{"support":s,"size":edges,"code":[...]}`.
pub fn pattern_to_json(p: &Pattern) -> JsonValue {
    JsonValue::Obj(vec![
        ("support".to_string(), JsonValue::Num(u64::from(p.support))),
        ("size".to_string(), JsonValue::Num(p.size() as u64)),
        ("code".to_string(), code_to_json(&p.code)),
    ])
}

/// Serializes an update batch as the wire's `ops` array (the client side
/// of [`ops_from_json`]).
pub fn ops_to_json(ops: &[DbUpdate]) -> JsonValue {
    let num = |n: u32| JsonValue::Num(u64::from(n));
    JsonValue::Arr(
        ops.iter()
            .map(|u| {
                let mut obj = vec![("gid".to_string(), num(u.gid))];
                let mut put = |k: &str, v: JsonValue| obj.push((k.to_string(), v));
                match u.update {
                    GraphUpdate::RelabelVertex { v, label } => {
                        put("op", JsonValue::Str("relabel-vertex".to_string()));
                        put("v", num(v));
                        put("label", num(label));
                    }
                    GraphUpdate::RelabelEdge { e, label } => {
                        put("op", JsonValue::Str("relabel-edge".to_string()));
                        put("e", num(e));
                        put("label", num(label));
                    }
                    GraphUpdate::AddEdge { u, v, label } => {
                        put("op", JsonValue::Str("add-edge".to_string()));
                        put("u", num(u));
                        put("v", num(v));
                        put("label", num(label));
                    }
                    GraphUpdate::AddVertex { label, attach_to, elabel } => {
                        put("op", JsonValue::Str("add-vertex".to_string()));
                        put("label", num(label));
                        put("attach_to", num(attach_to));
                        put("elabel", num(elabel));
                    }
                    GraphUpdate::DeleteEdge { e } => {
                        put("op", JsonValue::Str("delete-edge".to_string()));
                        put("e", num(e));
                    }
                    GraphUpdate::DeleteVertex { v } => {
                        put("op", JsonValue::Str("delete-vertex".to_string()));
                        put("v", num(v));
                    }
                }
                JsonValue::Obj(obj)
            })
            .collect(),
    )
}

/// Materializes and validates the `code` form of a `support` request.
///
/// Unlike [`DfsCode::to_graph`] — which asserts canonical gSpan ordering
/// and panics on anything else — this accepts edges in any order and
/// turns every malformed input into an error: the daemon must never
/// panic on untrusted bytes. The resulting graph is canonicalized by the
/// caller via [`min_dfs_code`], so non-minimal codes are fine.
fn pattern_from_code_json(value: &JsonValue) -> Result<Graph, String> {
    let edges = value.as_arr().ok_or("`code` must be an array of 5-tuples")?;
    if edges.is_empty() {
        return Err("`code` must contain at least one edge".to_string());
    }
    let mut labels: Vec<Option<VLabel>> = Vec::new();
    let mut tuples = Vec::with_capacity(edges.len());
    for (i, e) in edges.iter().enumerate() {
        let t = e.as_arr().filter(|t| t.len() == 5).ok_or_else(|| {
            format!("code edge {i}: expected [from, to, from_label, edge_label, to_label]")
        })?;
        let mut nums = [0u32; 5];
        for (j, v) in t.iter().enumerate() {
            nums[j] = v
                .as_num()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| format!("code edge {i}: field {j} is not a u32"))?;
        }
        let [from, to, from_label, edge_label, to_label] = nums;
        if from == to {
            return Err(format!("code edge {i}: self-loop on vertex {from}"));
        }
        for (v, l) in [(from, from_label), (to, to_label)] {
            let idx = v as usize;
            if idx >= labels.len() {
                labels.resize(idx + 1, None);
            }
            match labels[idx] {
                None => labels[idx] = Some(l),
                Some(prev) if prev == l => {}
                Some(prev) => {
                    return Err(format!("vertex {v} labeled both {prev} and {l}"));
                }
            }
        }
        tuples.push((from, to, edge_label));
    }
    let mut g = Graph::with_capacity(labels.len(), tuples.len());
    for (v, label) in labels.iter().enumerate() {
        let label = label.ok_or_else(|| format!("vertex {v} never appears in an edge"))?;
        g.add_vertex(label);
    }
    for (i, (from, to, elabel)) in tuples.into_iter().enumerate() {
        g.add_edge(from, to, elabel).map_err(|e| format!("code edge {i}: {e}"))?;
    }
    if !g.is_connected() {
        return Err("pattern is not connected".to_string());
    }
    Ok(g)
}

/// Materializes and validates the `graph` form of a `support` request:
/// `{"vertices":[label,...],"edges":[[u,v,label],...]}`.
fn pattern_from_graph_json(value: &JsonValue) -> Result<Graph, String> {
    let vertices = value
        .field("vertices")
        .and_then(JsonValue::as_arr)
        .ok_or("`graph` needs an array field `vertices`")?;
    let edges = value
        .field("edges")
        .and_then(JsonValue::as_arr)
        .ok_or("`graph` needs an array field `edges`")?;
    if vertices.is_empty() || edges.is_empty() {
        return Err("pattern must have at least one vertex and one edge".to_string());
    }
    let mut g = Graph::with_capacity(vertices.len(), edges.len());
    for (i, v) in vertices.iter().enumerate() {
        let label = v
            .as_num()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| format!("vertex {i}: label is not a u32"))?;
        g.add_vertex(label);
    }
    for (i, e) in edges.iter().enumerate() {
        let t = e
            .as_arr()
            .filter(|t| t.len() == 3)
            .ok_or_else(|| format!("edge {i}: expected [u, v, label]"))?;
        let mut nums = [0u32; 3];
        for (j, v) in t.iter().enumerate() {
            nums[j] = v
                .as_num()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| format!("edge {i}: field {j} is not a u32"))?;
        }
        g.add_edge(nums[0], nums[1], nums[2]).map_err(|e| format!("edge {i}: {e}"))?;
    }
    if !g.is_connected() {
        return Err("pattern is not connected".to_string());
    }
    Ok(g)
}

/// Decodes the `ops` array of an `update` request.
fn ops_from_json(value: &JsonValue) -> Result<Vec<DbUpdate>, String> {
    let items = value.as_arr().ok_or("`ops` must be an array")?;
    if items.is_empty() {
        return Err("`ops` must contain at least one update".to_string());
    }
    let mut ops = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let num = |key: &str| -> Result<u32, String> {
            item.field(key)
                .and_then(JsonValue::as_num)
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| format!("op {i}: missing or invalid u32 field `{key}`"))
        };
        let gid = num("gid")?;
        let op = item
            .field("op")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("op {i}: missing string field `op`"))?;
        let update = match op {
            "relabel-vertex" => GraphUpdate::RelabelVertex { v: num("v")?, label: num("label")? },
            "relabel-edge" => GraphUpdate::RelabelEdge { e: num("e")?, label: num("label")? },
            "add-edge" => GraphUpdate::AddEdge { u: num("u")?, v: num("v")?, label: num("label")? },
            "add-vertex" => GraphUpdate::AddVertex {
                label: num("label")?,
                attach_to: num("attach_to")?,
                elabel: num("elabel")?,
            },
            "delete-edge" => GraphUpdate::DeleteEdge { e: num("e")? },
            "delete-vertex" => GraphUpdate::DeleteVertex { v: num("v")? },
            other => return Err(format!("op {i}: unknown op `{other}`")),
        };
        ops.push(DbUpdate { gid, update });
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmine_graph::dfscode::min_dfs_code;

    #[test]
    fn parses_every_command() {
        assert_eq!(
            parse_request(r#"{"cmd":"status"}"#).unwrap(),
            Request::Status { report: false }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"status","report":1}"#).unwrap(),
            Request::Status { report: true }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"patterns","top":3,"min_support":2}"#).unwrap(),
            Request::Patterns { top: 3, min_support: Some(2) }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"patterns"}"#).unwrap(),
            Request::Patterns { top: DEFAULT_TOP, min_support: None }
        );
        assert_eq!(parse_request(r#"{"cmd":"shutdown"}"#).unwrap(), Request::Shutdown);
        let up = parse_request(
            r#"{"cmd":"update","ops":[{"gid":3,"op":"add-edge","u":0,"v":6,"label":2}]}"#,
        )
        .unwrap();
        assert_eq!(
            up,
            Request::Update {
                ops: vec![DbUpdate {
                    gid: 3,
                    update: GraphUpdate::AddEdge { u: 0, v: 6, label: 2 }
                }],
                ack: AckMode::Applied,
                dry_run: false,
            }
        );
        let durable = parse_request(
            r#"{"cmd":"update","ack":"durable","ops":[{"gid":3,"op":"add-edge","u":0,"v":6,"label":2}]}"#,
        )
        .unwrap();
        assert!(matches!(durable, Request::Update { ack: AckMode::Durable, .. }));
        assert!(parse_request(r#"{"cmd":"update","ack":"never","ops":[{"gid":0,"op":"relabel-vertex","v":0,"label":1}]}"#).is_err());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"cmd":"nope"}"#).is_err());
        assert!(parse_request(r#"{"no":"cmd"}"#).is_err());
        assert!(parse_request(r#"{"cmd":"update","ops":[]}"#).is_err());
        assert!(parse_request(r#"{"cmd":"update","ops":[{"gid":0,"op":"warp"}]}"#).is_err());
        assert!(parse_request(r#"{"cmd":"support"}"#).is_err());
    }

    #[test]
    fn support_code_round_trips_through_min_code() {
        // A labeled path 0-1-2; the wire code is NOT minimal (edges reversed).
        let req = parse_request(r#"{"cmd":"support","code":[[1,2,1,11,2],[0,1,0,10,1]]}"#).unwrap();
        let Request::Support { graph, owned } = req else { panic!("not a support request") };
        assert!(!owned);
        assert_eq!(graph.vertex_count(), 3);
        assert_eq!(graph.edge_count(), 2);
        let code = min_dfs_code(&graph);
        // The minimal code of the same path, built the canonical way.
        let mut canonical = Graph::new();
        let a = canonical.add_vertex(0);
        let b = canonical.add_vertex(1);
        let c = canonical.add_vertex(2);
        canonical.add_edge(a, b, 10).unwrap();
        canonical.add_edge(b, c, 11).unwrap();
        assert_eq!(code, min_dfs_code(&canonical));
    }

    #[test]
    fn support_code_rejects_untrusted_garbage() {
        // These would all panic inside DfsCode::to_graph.
        for bad in [
            r#"{"cmd":"support","code":[]}"#,
            r#"{"cmd":"support","code":[[0,0,1,1,1]]}"#, // self-loop
            r#"{"cmd":"support","code":[[0,1,2,3]]}"#,   // short tuple
            r#"{"cmd":"support","code":[[0,3,1,1,1]]}"#, // gap: vertex 1,2 missing
            r#"{"cmd":"support","code":[[0,1,5,1,6],[0,1,7,1,6]]}"#, // label conflict
            r#"{"cmd":"support","code":[[0,1,5,1,6],[0,1,5,2,6]]}"#, // duplicate edge
            r#"{"cmd":"support","code":[[0,1,1,1,1],[2,3,1,1,1]]}"#, // disconnected
        ] {
            assert!(parse_request(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn support_graph_spec_builds_the_graph() {
        let req = parse_request(
            r#"{"cmd":"support","graph":{"vertices":[0,1,0],"edges":[[0,1,5],[1,2,5]]}}"#,
        )
        .unwrap();
        let Request::Support { graph, .. } = req else { panic!("not a support request") };
        assert_eq!(graph.vertex_count(), 3);
        assert_eq!(graph.vlabel(2), 0);
        assert!(parse_request(r#"{"cmd":"support","graph":{"vertices":[0,1],"edges":[[0,5,1]]}}"#)
            .is_err());
    }

    #[test]
    fn ops_json_round_trips() {
        let ops = vec![
            DbUpdate { gid: 3, update: GraphUpdate::RelabelVertex { v: 1, label: 9 } },
            DbUpdate { gid: 0, update: GraphUpdate::RelabelEdge { e: 2, label: 4 } },
            DbUpdate { gid: 7, update: GraphUpdate::AddEdge { u: 0, v: 5, label: 2 } },
            DbUpdate {
                gid: 1,
                update: GraphUpdate::AddVertex { label: 6, attach_to: 2, elabel: 1 },
            },
            DbUpdate { gid: 2, update: GraphUpdate::DeleteEdge { e: 4 } },
            DbUpdate { gid: 5, update: GraphUpdate::DeleteVertex { v: 3 } },
        ];
        let line = JsonValue::Obj(vec![
            ("cmd".to_string(), JsonValue::Str("update".to_string())),
            ("ops".to_string(), ops_to_json(&ops)),
        ])
        .to_json();
        assert_eq!(
            parse_request(&line).unwrap(),
            Request::Update { ops, ack: AckMode::Applied, dry_run: false }
        );
    }

    #[test]
    fn parses_router_extensions() {
        let req = parse_request(r#"{"cmd":"support","code":[[0,1,0,5,1]],"owned":1}"#).unwrap();
        assert!(matches!(req, Request::Support { owned: true, .. }));
        let batch = parse_request(
            r#"{"cmd":"support-batch","codes":[[[0,1,0,5,1]],[[0,1,2,5,3],[1,2,3,5,2]]],"owned":1}"#,
        )
        .unwrap();
        let Request::SupportBatch { graphs, owned } = batch else { panic!("not a batch") };
        assert!(owned);
        assert_eq!(graphs.len(), 2);
        assert_eq!(graphs[1].edge_count(), 2);
        assert!(parse_request(r#"{"cmd":"support-batch","codes":[[]]}"#).is_err());
        let dry = parse_request(
            r#"{"cmd":"update","dry_run":1,"ops":[{"gid":0,"op":"relabel-vertex","v":0,"label":1}]}"#,
        )
        .unwrap();
        assert!(matches!(dry, Request::Update { dry_run: true, .. }));
        assert_eq!(
            parse_request(r#"{"cmd":"epoch-commit","global":7,"seq":2}"#).unwrap(),
            Request::EpochCommit { global: 7, seq: 2 }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"epoch-commit","global":1}"#).unwrap(),
            Request::EpochCommit { global: 1, seq: 0 }
        );
        assert!(parse_request(r#"{"cmd":"epoch-commit"}"#).is_err());
    }

    #[test]
    fn code_json_round_trips_without_validation() {
        let mut g = Graph::new();
        let a = g.add_vertex(0);
        let b = g.add_vertex(1);
        let c = g.add_vertex(2);
        g.add_edge(a, b, 10).unwrap();
        g.add_edge(b, c, 11).unwrap();
        let code = min_dfs_code(&g);
        let back = code_from_json(&code_to_json(&code)).unwrap();
        assert_eq!(back, code);
        assert!(code_from_json(&JsonValue::Num(3)).is_err());
        assert!(code_from_json(&JsonValue::parse("[[1,2,3]]").unwrap()).is_err());
    }

    #[test]
    fn graph_json_round_trips_through_support_parse() {
        let mut g = Graph::new();
        let a = g.add_vertex(4);
        let b = g.add_vertex(5);
        g.add_edge(a, b, 9).unwrap();
        let line = JsonValue::Obj(vec![
            ("cmd".to_string(), JsonValue::Str("support".to_string())),
            ("graph".to_string(), graph_to_json(&g)),
        ])
        .to_json();
        let Request::Support { graph, .. } = parse_request(&line).unwrap() else {
            panic!("not a support request")
        };
        assert_eq!(graph.vlabels(), g.vlabels());
        assert_eq!(graph.edge_count(), 1);
    }

    #[test]
    fn responses_have_a_status() {
        let ok = ok_response(vec![("epoch", JsonValue::Num(4))]);
        assert_eq!(ok.field("status").and_then(JsonValue::as_str), Some("ok"));
        assert_eq!(ok.field("epoch").and_then(JsonValue::as_num), Some(4));
        let err = error_response("boom");
        assert_eq!(err.field("status").and_then(JsonValue::as_str), Some("error"));
        assert_eq!(err.field("error").and_then(JsonValue::as_str), Some("boom"));
    }
}
