//! The TCP front end: an accept thread, a bounded connection queue, and
//! a fixed worker pool.
//!
//! Load shedding is explicit: when the queue is full the accept thread
//! immediately writes an `overloaded` error on the new connection and
//! closes it rather than letting requests pile up unboundedly. Workers
//! serve a connection until the client closes it, handling any number
//! of newline-delimited requests.
//!
//! Shutdown has two flavors. A client `shutdown` request (or
//! [`ServerHandle::wait`] returning) stops the threads and runs
//! [`ServeEngine::clean_stop`] — snapshot, persist patterns, truncate
//! the journal. [`ServerHandle::abort`] stops the threads *without* the
//! clean stop, leaving the data directory exactly as a `kill -9` would;
//! tests use it to exercise journal recovery.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use graphmine_telemetry::Counter;

use crate::engine::ServeEngine;
use crate::protocol::{self, Request};

/// How long a worker blocks on an idle connection before re-checking the
/// shutdown flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// Socket-side configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads (each serves one connection at a time).
    pub workers: usize,
    /// Accepted connections waiting for a worker before shedding starts.
    pub queue_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { addr: "127.0.0.1:0".to_string(), workers: 4, queue_depth: 64 }
    }
}

/// The bounded hand-off between the accept thread and the workers.
///
/// `std`'s `Mutex`/`Condvar` rather than the vendored `parking_lot`
/// shim, which has no condition variables.
struct ConnQueue {
    conns: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    depth: usize,
}

impl ConnQueue {
    fn new(depth: usize) -> Self {
        ConnQueue { conns: Mutex::new(VecDeque::new()), ready: Condvar::new(), depth }
    }

    /// Queues a connection, or hands it back when the queue is full.
    fn try_push(&self, conn: TcpStream) -> Result<(), TcpStream> {
        let mut q = self.conns.lock().expect("queue poisoned");
        if q.len() >= self.depth {
            return Err(conn);
        }
        q.push_back(conn);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next connection; `None` once shutdown is flagged.
    fn pop(&self, shutdown: &AtomicBool) -> Option<TcpStream> {
        let mut q = self.conns.lock().expect("queue poisoned");
        loop {
            if shutdown.load(Ordering::Relaxed) {
                return None;
            }
            if let Some(conn) = q.pop_front() {
                return Some(conn);
            }
            q = self.ready.wait(q).expect("queue poisoned");
        }
    }

    fn wake_all(&self) {
        self.ready.notify_all();
    }
}

/// Everything a worker needs, shared across threads.
struct Shared {
    engine: Arc<ServeEngine>,
    queue: ConnQueue,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

impl Shared {
    /// Flags shutdown and wakes every blocked thread: workers via the
    /// queue's condvar, the accept thread via a throwaway connection to
    /// its own listener (blocking `accept` has no other wake-up).
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.queue.wake_all();
        if let Ok(conn) = TcpStream::connect(self.addr) {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }
}

/// A running server; dropping it stops the threads (without a clean
/// stop — call [`ServerHandle::wait`] for that).
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Binds and starts the daemon over a booted engine.
///
/// # Errors
///
/// Fails when the address cannot be bound.
pub fn start(engine: Arc<ServeEngine>, cfg: &ServerConfig) -> Result<ServerHandle, String> {
    let listener = TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let shared = Arc::new(Shared {
        engine,
        queue: ConnQueue::new(cfg.queue_depth.max(1)),
        shutdown: AtomicBool::new(false),
        addr,
    });

    let workers = (0..cfg.workers.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .map_err(|e| format!("spawn worker: {e}"))
        })
        .collect::<Result<Vec<_>, _>>()?;

    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &shared))
            .map_err(|e| format!("spawn accept: {e}"))?
    };

    Ok(ServerHandle { shared, accept: Some(accept), workers })
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The engine behind the server.
    pub fn engine(&self) -> &Arc<ServeEngine> {
        &self.shared.engine
    }

    /// Whether a shutdown has been requested.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::Relaxed)
    }

    /// Blocks until a client requests shutdown, then stops the threads
    /// and runs [`ServeEngine::clean_stop`].
    ///
    /// # Errors
    ///
    /// Propagates clean-stop I/O failures.
    pub fn wait(mut self) -> Result<(), String> {
        self.join_threads();
        self.shared.engine.clean_stop()
    }

    /// Stops the threads *without* the clean stop: the data directory is
    /// left as an abrupt process death would leave it — snapshot stale,
    /// journal carrying every acknowledged batch. The next
    /// [`ServeEngine::boot`] must recover through the journal.
    pub fn abort(mut self) {
        self.shared.begin_shutdown();
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Accept exiting means shutdown was flagged; workers drain out.
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() || !self.workers.is_empty() {
            self.shared.begin_shutdown();
            self.join_threads();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::Relaxed) {
            break;
        }
        let Ok(conn) = conn else { continue };
        if let Err(mut conn) = shared.queue.try_push(conn) {
            // Shed: tell the client explicitly instead of timing out.
            shared.engine.telemetry().counters().bump(Counter::ReqOverloaded);
            let line = protocol::error_response("overloaded").to_json();
            let _ = writeln!(conn, "{line}");
            let _ = conn.shutdown(Shutdown::Write);
        }
    }
    shared.queue.wake_all();
}

fn worker_loop(shared: &Shared) {
    while let Some(conn) = shared.queue.pop(&shared.shutdown) {
        serve_conn(conn, shared);
    }
}

/// Serves one connection until EOF, error, or shutdown. The read
/// timeout keeps an idle client from pinning the worker across a
/// shutdown; partially read lines survive timeouts because the buffer
/// is only cleared after a full line is handled.
fn serve_conn(conn: TcpStream, shared: &Shared) {
    let _ = conn.set_read_timeout(Some(READ_POLL));
    let Ok(read_half) = conn.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = conn;
    let mut line = String::new();
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {
                if !line.trim().is_empty() {
                    let stop = respond(&line, &mut writer, shared);
                    if stop {
                        return;
                    }
                }
                line.clear();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

/// Handles one request line; returns `true` when the connection (and on
/// `shutdown`, the server) should stop.
fn respond(line: &str, writer: &mut TcpStream, shared: &Shared) -> bool {
    let counters = shared.engine.telemetry().counters();
    let (response, stop) = match protocol::parse_request(line) {
        Ok(Request::Shutdown) => (shared.engine.handle(&Request::Shutdown), true),
        Ok(req) => (shared.engine.handle(&req), false),
        Err(e) => {
            counters.bump(Counter::ReqErrors);
            (protocol::error_response(&e), false)
        }
    };
    let sent = writeln!(writer, "{}", response.to_json()).and_then(|()| writer.flush());
    if stop {
        // Only begin the shutdown after the acknowledgement is on the
        // wire so the requesting client sees its response.
        shared.begin_shutdown();
        return true;
    }
    sent.is_err()
}
