//! Epoch-keyed support memo: a reader racing an epoch swap must never be
//! answered from another generation's memo.
//!
//! The database is built so the probe pattern's exact support is a pure
//! function of the epoch (each update batch removes exactly one
//! supporter), which turns every `(epoch, support)` observation into a
//! self-checking assertion: any cross-epoch memo leak shows up as a
//! support that disagrees with the epoch it was reported for.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use graphmine_graph::{DbUpdate, Graph, GraphDb, GraphUpdate};
use graphmine_serve::{EngineConfig, ServeEngine};

/// Six graphs. Edge 0 (`0-1`, label 10) is the probe: present in graphs
/// 0..4 only, so its support starts at 4 and relabeling it in one graph
/// per batch steps the support down 4 → 3 → 2 → 1 as the epoch steps up.
/// Edge `2-3` (label 20) appears in all six graphs, keeping `P(D)`
/// non-empty at `min_support = 6`.
fn stepped_db() -> GraphDb {
    (0..6u32)
        .map(|i| {
            let mut g = Graph::new();
            for l in 0..4 {
                g.add_vertex(l);
            }
            let probe_label = if i < 4 { 10 } else { 99 };
            g.add_edge(0, 1, probe_label).unwrap(); // edge 0: the probe
            g.add_edge(1, 2, 30 + i).unwrap(); // unique filler, support 1
            g.add_edge(2, 3, 20).unwrap(); // frequent everywhere
            g
        })
        .collect()
}

fn probe() -> Graph {
    let mut g = Graph::new();
    g.add_vertex(0);
    g.add_vertex(1);
    g.add_edge(0, 1, 10).unwrap();
    g
}

fn batch(gid: u32) -> Vec<DbUpdate> {
    vec![DbUpdate { gid, update: GraphUpdate::RelabelEdge { e: 0, label: 99 } }]
}

fn boot(dir: &std::path::Path) -> ServeEngine {
    let cfg = EngineConfig { min_support: 6, k: 2, ..EngineConfig::default() };
    let (engine, _) = ServeEngine::boot(Some(&stepped_db()), dir, &cfg).unwrap();
    engine
}

/// Deterministic white-box interleaving: a reader that grabbed its epoch
/// `Arc` *before* the swap keeps getting the old epoch's answer, and the
/// new epoch's first answer is never satisfied from the old memo.
#[test]
fn reader_holding_old_epoch_is_answered_from_its_own_generation() {
    let dir = tempfile::tempdir().unwrap();
    let engine = boot(dir.path());
    let probe = probe();

    let ep0 = engine.current();
    assert_eq!(ep0.epoch, 0);
    // Prime the memo for epoch 0 (the probe is infrequent at minsup 6).
    assert_eq!(engine.support_of(&ep0, &probe).0, 4);

    // The swap happens while the reader still holds `ep0`.
    engine.apply_update(&batch(0)).unwrap();
    let ep1 = engine.current();
    assert_eq!(ep1.epoch, 1);

    // New epoch: must not see epoch 0's memoized 4.
    assert_eq!(engine.support_of(&ep1, &probe).0, 3);
    // Old epoch Arc: must not see epoch 1's memoized 3.
    assert_eq!(engine.support_of(&ep0, &probe).0, 4);
    // And the memo hits keep both generations separate.
    assert_eq!(engine.support_of(&ep1, &probe).0, 3);
    assert_eq!(engine.support_of(&ep0, &probe).0, 4);
}

/// The `(epoch, code)` memos hold at most two generations — the served
/// epoch plus N-1 for in-flight readers — no matter how many swaps a
/// long-running daemon goes through. Before the swap-time eviction this
/// was an unbounded leak: one entry per probed epoch, forever.
#[test]
fn memo_size_is_pinned_across_a_hundred_swaps() {
    let dir = tempfile::tempdir().unwrap();
    let engine = boot(dir.path());
    let probe = probe();

    // Prime epoch 0, swap once: the N-1 generation must survive the
    // swap so a reader still holding epoch 0's Arc hits its memo.
    let ep0 = engine.current();
    assert_eq!(engine.support_of(&ep0, &probe).0, 4);
    assert_eq!(engine.memo_sizes().0, 1);
    engine.apply_update(&batch(0)).unwrap();
    assert_eq!(engine.memo_sizes().0, 1, "the previous generation survives one swap");
    assert_eq!(engine.support_of(&ep0, &probe).0, 4);

    // A hundred more swaps, probing each epoch: the memo never holds
    // more than the two live generations (one probed code per epoch).
    let relabel =
        |to| vec![DbUpdate { gid: 0, update: GraphUpdate::RelabelEdge { e: 0, label: to } }];
    for i in 0..100u32 {
        let to = if i % 2 == 0 { 10 } else { 99 };
        engine.apply_update(&relabel(to)).unwrap();
        let ep = engine.current();
        let expect = if to == 10 { 4 } else { 3 };
        assert_eq!(engine.support_of(&ep, &probe).0, expect);
        let (support_len, owned_len) = engine.memo_sizes();
        assert!(
            support_len <= 2,
            "support memo leaked: {support_len} entries at epoch {}",
            ep.epoch
        );
        assert_eq!(owned_len, 0, "no owned probes were issued");
    }
    assert_eq!(engine.current().epoch, 101);
}

/// Reader threads hammer the support path while the main thread applies
/// four epoch-stepping batches. Every observation must satisfy
/// `support == 4 - epoch` — a cross-epoch memo hit breaks the equation.
#[test]
fn racing_readers_never_see_a_stale_memo() {
    const READERS: usize = 4;

    let dir = tempfile::tempdir().unwrap();
    let engine = Arc::new(boot(dir.path()));
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let probe = probe();
                let mut observations = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let ep = engine.current();
                    let (support, _) = engine.support_of(&ep, &probe);
                    assert_eq!(
                        u64::from(support),
                        4 - ep.epoch,
                        "epoch {} answered with support {support}",
                        ep.epoch
                    );
                    observations += 1;
                }
                observations
            })
        })
        .collect();

    for gid in 0..4 {
        engine.apply_update(&batch(gid)).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    stop.store(true, Ordering::Relaxed);
    let total: usize = readers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total > 0, "readers observed at least one answer");
    assert_eq!(engine.current().epoch, 4);
}
