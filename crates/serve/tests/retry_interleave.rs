//! Table-driven contract test for [`RetryPolicy`] × `backpressure` ×
//! `overloaded` replies arriving interleaved from different shards.
//!
//! The router fans one logical update out to several shard backends;
//! each backend independently sheds with `backpressure` (ingest bound,
//! retryable after a backoff) or `overloaded` (connection-queue bound,
//! reply-then-close, NOT retried by [`Client`] — reconnect/failover is
//! the pool layer's job). Each table row scripts a reply sequence per
//! fake shard and drives a real [`Client`] against each concurrently,
//! pinning:
//!
//! * `backpressure` is retried up to `attempts`, then surfaces;
//! * `overloaded` surfaces immediately — even mid-retry-loop after a
//!   `backpressure`, and even while the *other* shard is retrying;
//! * a shard's verdict only consumes that shard's attempts.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::thread;

use graphmine_graph::{DbUpdate, GraphUpdate};
use graphmine_serve::{Client, RetryPolicy};

#[derive(Debug, Clone, Copy)]
enum Reply {
    /// `{"status":"error","error":"backpressure","pending":N}` — retryable.
    Backpressure,
    /// `{"status":"error","error":"overloaded"}` then close, like the
    /// accept thread shedding a connection.
    Overloaded,
    /// A durable-ack success.
    Ok,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Ok,
    BackpressureErr,
    OverloadedErr,
}

/// One scripted fake shard: accepts a single connection and answers each
/// request line with the next scripted reply. Returns the number of
/// requests it actually served.
fn fake_shard(script: Vec<Reply>) -> (String, thread::JoinHandle<usize>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let handle = thread::spawn(move || {
        let (conn, _) = listener.accept().unwrap();
        let mut writer = conn.try_clone().unwrap();
        let mut reader = BufReader::new(conn);
        let mut served = 0usize;
        for reply in script {
            let mut line = String::new();
            if reader.read_line(&mut line).unwrap() == 0 {
                break;
            }
            served += 1;
            match reply {
                Reply::Backpressure => {
                    writeln!(writer, r#"{{"status":"error","error":"backpressure","pending":4}}"#)
                        .unwrap()
                }
                Reply::Overloaded => {
                    writeln!(writer, r#"{{"status":"error","error":"overloaded"}}"#).unwrap();
                    break; // close the connection, like the real shed path
                }
                Reply::Ok => writeln!(
                    writer,
                    r#"{{"status":"ok","seq":1,"durable":1,"pending":0,"epoch":1}}"#
                )
                .unwrap(),
            }
        }
        served
    });
    (addr, handle)
}

struct ShardCase {
    script: Vec<Reply>,
    attempts: u32,
    expect: Outcome,
    expect_served: usize,
}

fn run_case(name: &str, shards: Vec<ShardCase>) {
    let ops = vec![DbUpdate { gid: 0, update: GraphUpdate::RelabelVertex { v: 0, label: 1 } }];
    let mut drivers = Vec::new();
    for (i, shard) in shards.into_iter().enumerate() {
        let (addr, server) = fake_shard(shard.script);
        let ops = ops.clone();
        // One thread per shard so replies really interleave in time.
        let driver = thread::spawn(move || {
            let retry = RetryPolicy { attempts: shard.attempts, base_ms: 1, cap_ms: 4, seed: 7 };
            let mut client = Client::connect(addr.as_str()).unwrap().with_retry(retry);
            let got = match client.update(&ops) {
                Ok(_) => Outcome::Ok,
                Err(e) if e.starts_with("backpressure") => Outcome::BackpressureErr,
                Err(e) if e == "overloaded" => Outcome::OverloadedErr,
                Err(e) => panic!("shard {i}: unexpected error: {e}"),
            };
            drop(client); // let the fake server's read_line return 0
            (got, server.join().unwrap())
        });
        drivers.push((i, shard.expect, shard.expect_served, driver));
    }
    for (i, expect, expect_served, driver) in drivers {
        let (got, served) = driver.join().unwrap();
        assert_eq!(got, expect, "{name}: shard {i} outcome");
        assert_eq!(served, expect_served, "{name}: shard {i} requests served");
    }
}

#[test]
fn retry_policy_vs_interleaved_shard_replies() {
    // (name, per-shard scripts) — each row drives all its shards
    // concurrently against one logical update.
    let table: Vec<(&str, Vec<ShardCase>)> = vec![
        (
            "backpressure retries until ok while the other shard acks at once",
            vec![
                ShardCase {
                    script: vec![Reply::Backpressure, Reply::Backpressure, Reply::Ok],
                    attempts: 6,
                    expect: Outcome::Ok,
                    expect_served: 3,
                },
                ShardCase {
                    script: vec![Reply::Ok],
                    attempts: 6,
                    expect: Outcome::Ok,
                    expect_served: 1,
                },
            ],
        ),
        (
            "attempts bound exhausts and the final backpressure surfaces",
            vec![
                ShardCase {
                    script: vec![Reply::Backpressure; 3],
                    attempts: 3,
                    expect: Outcome::BackpressureErr,
                    expect_served: 3,
                },
                ShardCase {
                    script: vec![Reply::Backpressure, Reply::Ok],
                    attempts: 3,
                    expect: Outcome::Ok,
                    expect_served: 2,
                },
            ],
        ),
        (
            "overloaded is not retried even with attempts left",
            vec![
                ShardCase {
                    script: vec![Reply::Overloaded],
                    attempts: 6,
                    expect: Outcome::OverloadedErr,
                    expect_served: 1,
                },
                ShardCase {
                    script: vec![Reply::Backpressure, Reply::Backpressure, Reply::Ok],
                    attempts: 6,
                    expect: Outcome::Ok,
                    expect_served: 3,
                },
            ],
        ),
        (
            "overloaded mid-retry-loop stops the backpressure retries cold",
            vec![
                ShardCase {
                    script: vec![Reply::Backpressure, Reply::Overloaded],
                    attempts: 6,
                    expect: Outcome::OverloadedErr,
                    expect_served: 2,
                },
                ShardCase {
                    script: vec![
                        Reply::Backpressure,
                        Reply::Backpressure,
                        Reply::Backpressure,
                        Reply::Ok,
                    ],
                    attempts: 6,
                    expect: Outcome::Ok,
                    expect_served: 4,
                },
            ],
        ),
    ];
    for (name, shards) in table {
        run_case(name, shards);
    }
}

#[test]
fn a_shard_that_shed_overloaded_is_gone_until_reconnect() {
    // After the reply-then-close shed, the same Client cannot be reused —
    // the pool layer must reconnect. The error names the dead peer.
    let (addr, server) = fake_shard(vec![Reply::Overloaded]);
    let mut client = Client::connect(addr.as_str()).unwrap().with_retry(RetryPolicy::none());
    let ops = vec![DbUpdate { gid: 0, update: GraphUpdate::RelabelVertex { v: 0, label: 1 } }];
    assert_eq!(client.update(&ops).unwrap_err(), "overloaded");
    let err = client.status(false).unwrap_err();
    assert!(
        err.contains(&addr) || err.contains("closed") || err.contains("send to"),
        "reuse after close should fail attributably: {err}"
    );
    assert_eq!(server.join().unwrap(), 1);
}
