//! Concurrency tests for the serving daemon: many client threads
//! reading through an in-flight update, concurrent writers streaming
//! windows through the bounded ingest queue (with `backpressure` sheds
//! reconciled exactly), explicit load shedding when the connection
//! queue fills, and counter reconciliation against the exact number of
//! issued requests.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use graphmine_datagen::{generate, plan_updates, GenParams, UpdateKind, UpdateParams};
use graphmine_graph::{DbUpdate, DfsCode, DfsEdge, GraphDb, GraphUpdate};
use graphmine_serve::{
    start, AckMode, Client, EngineConfig, RetryPolicy, ServeEngine, ServerConfig,
};
use graphmine_telemetry::JsonValue;

fn test_db() -> GraphDb {
    generate(&GenParams::new(24, 6, 4, 4, 3).with_seed(11))
}

fn booted(dir: &std::path::Path) -> Arc<ServeEngine> {
    let db = test_db();
    let cfg = EngineConfig { min_support: db.abs_support(0.3), k: 2, ..EngineConfig::default() };
    let (engine, _) = ServeEngine::boot(Some(&db), dir, &cfg).unwrap();
    Arc::new(engine)
}

/// Eight reader threads hammer `patterns` and `support` while an update
/// lands mid-flight. Every response must carry a consistent epoch (0 or
/// 1, never going backwards per thread) and the final counters must
/// equal the exact number of requests issued.
#[test]
fn readers_stay_consistent_through_an_inflight_update() {
    const READERS: usize = 8;
    const ROUNDS: usize = 30;

    let dir = tempfile::tempdir().unwrap();
    let engine = booted(dir.path());
    let handle = start(
        engine,
        &ServerConfig { workers: READERS + 2, queue_depth: 64, ..ServerConfig::default() },
    )
    .unwrap();
    let addr = handle.addr();

    let probe = DfsCode(vec![DfsEdge::new(0, 1, 0, 0, 0)]);
    let readers: Vec<_> = (0..READERS)
        .map(|i| {
            let probe = probe.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut last_epoch = 0u64;
                for round in 0..ROUNDS {
                    let resp = if (round + i) % 2 == 0 {
                        client.patterns(Some(1000), None).unwrap()
                    } else {
                        client.support(&probe).unwrap()
                    };
                    let epoch = resp.field("epoch").and_then(JsonValue::as_num).unwrap();
                    assert!(epoch >= last_epoch, "epoch went backwards: {epoch} < {last_epoch}");
                    assert!(epoch <= 1, "only one update is ever applied");
                    last_epoch = epoch;
                    if let Some(patterns) = resp.field("patterns").and_then(JsonValue::as_arr) {
                        let returned = resp.field("returned").and_then(JsonValue::as_num).unwrap();
                        assert_eq!(patterns.len() as u64, returned);
                    }
                }
            })
        })
        .collect();

    // One update lands while the readers are running.
    let db = test_db();
    let ops = plan_updates(&db, &UpdateParams::new(0.25, 2, UpdateKind::Mixed, 4).with_seed(5));
    let mut writer = Client::connect(addr).unwrap();
    let ack = writer.update(&ops).unwrap();
    assert_eq!(ack.field("epoch").and_then(JsonValue::as_num), Some(1));

    for r in readers {
        r.join().expect("reader thread panicked (deadlock or bad response)");
    }

    // Reconcile the counters with exactly what was issued.
    let status = writer.status(false).unwrap();
    let counters = status.field("counters").expect("counters object");
    let get = |name: &str| counters.field(name).and_then(JsonValue::as_num).unwrap();
    let expected_patterns = (READERS * ROUNDS).div_ceil(2) as u64; // per-thread split is exact
    assert_eq!(get("req_patterns"), expected_patterns);
    assert_eq!(get("req_support"), (READERS * ROUNDS) as u64 - expected_patterns);
    assert_eq!(get("req_update"), 1);
    assert_eq!(get("req_status"), 1, "only this reconciliation status");
    assert_eq!(get("req_errors"), 0);
    assert_eq!(get("wal_batches_appended"), 1);
    assert_eq!(get("epoch_swaps"), 1);

    writer.shutdown().unwrap();
    handle.wait().unwrap();
}

/// The streaming-ingest stress: N writers racing M readers through a
/// deliberately tiny ingest queue. Writers stream `ack: durable`
/// windows on disjoint graphs, counting every `backpressure` shed they
/// absorb; readers assert per-connection epoch monotonicity and
/// internally consistent responses throughout. Once the pipeline
/// drains, the counters must reconcile *exactly*: every acked window
/// journaled once and applied in one epoch swap, every shed counted on
/// both sides of the wire, and no request errors.
#[test]
fn concurrent_writers_and_readers_reconcile_exactly() {
    const WRITERS: usize = 4;
    const WINDOWS: usize = 6;
    const READERS: usize = 3;

    let dir = tempfile::tempdir().unwrap();
    let db = test_db();
    let mut cfg =
        EngineConfig { min_support: db.abs_support(0.3), k: 2, ..EngineConfig::default() };
    cfg.ingest.max_pending = 2; // tiny staleness bound: force sheds
    let (engine, _) = ServeEngine::boot(Some(&db), dir.path(), &cfg).unwrap();
    let engine = Arc::new(engine);
    let handle = start(
        Arc::clone(&engine),
        &ServerConfig {
            workers: WRITERS + READERS + 1,
            queue_depth: 64,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();
    let done = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut last_epoch = 0u64;
                let mut rounds = 0usize;
                while !done.load(Ordering::Relaxed) {
                    let resp = client.patterns(Some(1000), None).unwrap();
                    let epoch = resp.field("epoch").and_then(JsonValue::as_num).unwrap();
                    assert!(epoch >= last_epoch, "epoch went backwards: {epoch} < {last_epoch}");
                    assert!(epoch <= (WRITERS * WINDOWS) as u64, "epoch beyond the last window");
                    last_epoch = epoch;
                    let returned = resp.field("returned").and_then(JsonValue::as_num).unwrap();
                    let patterns = resp.field("patterns").and_then(JsonValue::as_arr).unwrap();
                    assert_eq!(patterns.len() as u64, returned, "half-assembled response");
                    rounds += 1;
                }
                rounds
            })
        })
        .collect();

    // Writers stream disjoint-graph relabels; any interleaving lands on
    // the same database, so readers can never observe a "wrong" merge.
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let retry = RetryPolicy { attempts: 1, base_ms: 1, cap_ms: 8, seed: w as u64 };
                let mut sheds = 0u64;
                for r in 0..WINDOWS {
                    let ops = vec![DbUpdate {
                        gid: w as u32,
                        update: GraphUpdate::RelabelVertex { v: 0, label: (10 + r) as u32 },
                    }];
                    let mut attempt = 0u32;
                    loop {
                        match client.update_once(&ops, AckMode::Durable) {
                            Ok(resp) => {
                                assert_eq!(
                                    resp.field("durable").and_then(JsonValue::as_num),
                                    Some(1)
                                );
                                break;
                            }
                            Err(e) if e.starts_with("backpressure") => {
                                sheds += 1;
                                std::thread::sleep(retry.backoff(attempt));
                                attempt += 1;
                            }
                            Err(e) => panic!("writer {w} window {r}: {e}"),
                        }
                    }
                }
                sheds
            })
        })
        .collect();

    let total_sheds: u64 = writers.into_iter().map(|h| h.join().unwrap()).sum();
    // Drain: every acked window must be folded in before reconciling.
    while engine.pending_windows() > 0 {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    done.store(true, Ordering::Relaxed);
    let reader_rounds: usize = readers.into_iter().map(|h| h.join().unwrap()).sum();

    let total = (WRITERS * WINDOWS) as u64;
    assert_eq!(engine.current().epoch, total, "every acked window reached an epoch");
    let mut client = Client::connect(addr).unwrap();
    let status = client.status(false).unwrap();
    assert_eq!(status.field("pending_windows").and_then(JsonValue::as_num), Some(0));
    let counters = status.field("counters").expect("counters object");
    let get = |name: &str| counters.field(name).and_then(JsonValue::as_num).unwrap();
    assert_eq!(get("ingest_windows"), total);
    assert_eq!(get("wal_batches_appended"), total);
    assert_eq!(get("epoch_swaps"), total);
    assert_eq!(get("req_update"), total, "sheds must not count as served updates");
    assert_eq!(get("ingest_ops_in"), total, "one op per window, sheds admitted nothing");
    assert_eq!(
        get("ingest_backpressure"),
        total_sheds,
        "server-side sheds must match what the writers absorbed"
    );
    assert_eq!(get("req_errors"), 0, "backpressure is shedding, not an error");
    assert_eq!(get("req_patterns"), reader_rounds as u64);
    let peak = get("ingest_pending_peak");
    assert!(
        (1..=cfg.ingest.max_pending as u64).contains(&peak),
        "pending peak {peak} escaped the staleness bound {}",
        cfg.ingest.max_pending
    );
    assert!(get("wal_group_commits") <= get("wal_group_frames"));
    assert_eq!(get("wal_group_frames"), total, "every window in exactly one group frame");

    client.shutdown().unwrap();
    handle.wait().unwrap();
}

/// With one worker and a queue of one, a held connection plus a queued
/// one force the next arrival to be shed with an explicit `overloaded`
/// error instead of hanging.
#[test]
fn full_queue_sheds_with_overloaded() {
    let dir = tempfile::tempdir().unwrap();
    let engine = booted(dir.path());
    let handle =
        start(engine, &ServerConfig { workers: 1, queue_depth: 1, ..ServerConfig::default() })
            .unwrap();
    let addr = handle.addr();

    // A completed request proves the single worker now owns this
    // connection (it serves it until we close it).
    let mut held = Client::connect(addr).unwrap();
    held.status(false).unwrap();

    // Fills the queue; no worker will ever pick it up while `held` is open.
    let parked = TcpStream::connect(addr).unwrap();

    // Third connection: must be shed immediately.
    let shed = TcpStream::connect(addr).unwrap();
    let mut line = String::new();
    BufReader::new(&shed).read_line(&mut line).unwrap();
    let resp = JsonValue::parse(line.trim_end()).unwrap();
    assert_eq!(resp.field("status").and_then(JsonValue::as_str), Some("error"));
    assert_eq!(resp.field("error").and_then(JsonValue::as_str), Some("overloaded"));

    // The shed is visible in the counters, via the still-served connection.
    let status = held.status(false).unwrap();
    let shed_count = status
        .field("counters")
        .and_then(|c| c.field("req_overloaded"))
        .and_then(JsonValue::as_num)
        .unwrap();
    assert!(shed_count >= 1);

    drop(parked);
    held.shutdown().unwrap();
    handle.wait().unwrap();
}

/// Raw protocol errors: garbage lines get an error response (and count
/// as `req_errors`) without killing the connection.
#[test]
fn malformed_lines_get_error_responses() {
    let dir = tempfile::tempdir().unwrap();
    let engine = booted(dir.path());
    let handle = start(engine, &ServerConfig::default()).unwrap();

    let mut conn = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    for bad in ["not json", r#"{"cmd":"warp"}"#, r#"{"cmd":"support","code":[[0,0,1,1,1]]}"#] {
        writeln!(conn, "{bad}").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp = JsonValue::parse(line.trim_end()).unwrap();
        assert_eq!(resp.field("status").and_then(JsonValue::as_str), Some("error"));
    }
    // The connection still works.
    let mut client = Client::connect(handle.addr()).unwrap();
    let status = client.status(false).unwrap();
    let errors = status
        .field("counters")
        .and_then(|c| c.field("req_errors"))
        .and_then(JsonValue::as_num)
        .unwrap();
    assert_eq!(errors, 3);

    client.shutdown().unwrap();
    handle.wait().unwrap();
}
