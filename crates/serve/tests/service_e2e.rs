//! End-to-end durability tests for the serving daemon: an acknowledged
//! update must survive an abrupt kill, a torn journal tail must be
//! ignored, and recovery must land on exactly the state the batch
//! `incremental` pipeline produces for the same updates.

use std::sync::Arc;

use graphmine_core::{IncPartMiner, PartMiner, PartMinerConfig};
use graphmine_datagen::{generate, plan_updates, GenParams, UpdateKind, UpdateParams};
use graphmine_graph::{DbUpdate, GraphDb, PatternSet, Support};
use graphmine_serve::{start, Client, EngineConfig, ServeEngine, ServerConfig};
use graphmine_telemetry::JsonValue;

fn test_db() -> GraphDb {
    // D=24 graphs, T=6 edges avg, N=4 labels, L=4 kernels, I=3 edges.
    generate(&GenParams::new(24, 6, 4, 4, 3).with_seed(11))
}

fn engine_cfg(db: &GraphDb) -> EngineConfig {
    EngineConfig { min_support: db.abs_support(0.3), k: 2, ..EngineConfig::default() }
}

fn update_plan(db: &GraphDb, seed: u64) -> Vec<DbUpdate> {
    plan_updates(db, &UpdateParams::new(0.25, 2, UpdateKind::Mixed, 4).with_seed(seed))
}

/// Two consecutive batches, the second planned against the database
/// *after* the first (planning both against the original could collide,
/// e.g. re-adding an edge the first batch already added).
fn two_batches(db: &GraphDb, seed: u64) -> (Vec<DbUpdate>, Vec<DbUpdate>) {
    let batch1 = update_plan(db, seed);
    let mut db1 = db.clone();
    graphmine_graph::update::apply_all(&mut db1, &batch1).expect("batch1 applies");
    let batch2 = update_plan(&db1, seed + 1);
    (batch1, batch2)
}

/// The reference result: cold-mine the original database, then fold the
/// same batches in with the batch incremental pipeline (what the CLI's
/// `incremental` command runs).
fn batch_incremental(db: &GraphDb, min_support: Support, batches: &[Vec<DbUpdate>]) -> PatternSet {
    let mut cfg = PartMinerConfig::with_k(2);
    cfg.exact_supports = true;
    let ufreq: Vec<Vec<f64>> = db.iter().map(|(_, g)| vec![0.0; g.vertex_count()]).collect();
    let mut state = PartMiner::new(cfg).mine(db, &ufreq, min_support).state;
    for batch in batches {
        IncPartMiner::update(&mut state, batch).expect("reference update applies");
    }
    state.patterns().clone()
}

/// Sorted `(support, code-json)` pairs from a `patterns` response — a
/// comparable fingerprint of what the server handed out.
fn response_fingerprint(resp: &JsonValue) -> Vec<(u64, String)> {
    let mut out: Vec<(u64, String)> = resp
        .field("patterns")
        .and_then(JsonValue::as_arr)
        .expect("patterns array")
        .iter()
        .map(|p| {
            (
                p.field("support").and_then(JsonValue::as_num).expect("support"),
                p.field("code").expect("code").to_json(),
            )
        })
        .collect();
    out.sort();
    out
}

fn set_fingerprint(set: &PatternSet) -> Vec<(u64, String)> {
    let mut out: Vec<(u64, String)> = set
        .iter()
        .map(|p| (u64::from(p.support), graphmine_serve::protocol::code_to_json(&p.code).to_json()))
        .collect();
    out.sort();
    out
}

#[test]
fn acked_update_survives_abort_and_matches_batch_incremental() {
    let dir = tempfile::tempdir().unwrap();
    let db = test_db();
    let cfg = engine_cfg(&db);
    let ops = update_plan(&db, 5);
    assert!(!ops.is_empty());

    // Serve, update over the wire, read the post-update patterns.
    let (engine, boot) = ServeEngine::boot(Some(&db), dir.path(), &cfg).unwrap();
    assert_eq!(boot.epoch, 0);
    let handle = start(Arc::new(engine), &ServerConfig::default()).unwrap();
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();
    let ack = client.update(&ops).unwrap();
    assert_eq!(ack.field("epoch").and_then(JsonValue::as_num), Some(1));
    let live = client.patterns(Some(100_000), None).unwrap();
    assert_eq!(live.field("epoch").and_then(JsonValue::as_num), Some(1));
    drop(client);

    // Kill without shutdown: no snapshot refresh, no journal truncation.
    handle.abort();

    // Recover and serve again: the ack must hold.
    let (engine, boot) = ServeEngine::boot(None, dir.path(), &cfg).unwrap();
    assert!(boot.from_snapshot);
    assert_eq!(boot.replayed, 1, "the acked batch is replayed from the journal");
    assert_eq!(boot.epoch, 1);
    let handle = start(Arc::new(engine), &ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let recovered = client.patterns(Some(100_000), None).unwrap();
    assert_eq!(recovered.field("epoch").and_then(JsonValue::as_num), Some(1));
    assert_eq!(
        response_fingerprint(&recovered),
        response_fingerprint(&live),
        "recovery serves exactly the acknowledged patterns"
    );

    // And both equal the uninterrupted batch pipeline on the same ops.
    let reference = batch_incremental(&db, cfg.min_support, &[ops]);
    assert_eq!(response_fingerprint(&live), set_fingerprint(&reference));

    client.shutdown().unwrap();
    handle.wait().unwrap();
}

#[test]
fn torn_journal_tail_recovers_to_last_acked_batch() {
    let dir = tempfile::tempdir().unwrap();
    let db = test_db();
    let cfg = engine_cfg(&db);
    let (batch1, batch2) = two_batches(&db, 21);

    // Two acknowledged batches, then a crash that tears the second
    // frame in half on disk. The file is page-padded, so the frame
    // boundaries come from the frame headers, not the file length.
    let wal = dir.path().join("journal.wal");
    {
        let (engine, _) = ServeEngine::boot(Some(&db), dir.path(), &cfg).unwrap();
        engine.apply_update(&batch1).unwrap();
        engine.apply_update(&batch2).unwrap();
    }
    let bytes = std::fs::read(&wal).unwrap();
    let frame_len = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
    let after_first = 8 + frame_len(0);
    let cut = after_first + 8 + frame_len(after_first) / 2;
    assert!(cut < bytes.len());
    std::fs::write(&wal, &bytes[..cut]).unwrap();

    // Only the intact first batch comes back.
    let (engine, boot) = ServeEngine::boot(None, dir.path(), &cfg).unwrap();
    assert_eq!(boot.replayed, 1, "torn second batch is ignored");
    assert_eq!(boot.epoch, 1);
    let reference = batch_incremental(&db, cfg.min_support, std::slice::from_ref(&batch1));
    assert!(engine.current().patterns.same_codes_and_supports(&reference));

    // The journal stays usable: the next update acks as batch 2 again.
    let ack = engine.apply_update(&batch2).unwrap();
    assert_eq!(ack.seq, 2);
    let reference = batch_incremental(&db, cfg.min_support, &[batch1, batch2]);
    assert!(engine.current().patterns.same_codes_and_supports(&reference));
}

/// Group-commit durability end to end: windows streamed concurrently
/// with `ack: durable` share fsync barriers (grouped frames in the WAL),
/// the process dies without a clean stop, and recovery must replay every
/// acked window — the torn-tail contract extended from single
/// `append_batch` frames to grouped ones.
#[test]
fn grouped_durable_acks_survive_abort() {
    let dir = tempfile::tempdir().unwrap();
    let db = test_db();
    let cfg = engine_cfg(&db);

    const WRITERS: usize = 4;
    const WINDOWS: usize = 2;
    // Disjoint relabel targets per writer: any admission order lands on
    // the same final database, so the reference is order-free.
    let window = |w: usize, r: usize| {
        vec![DbUpdate {
            gid: (w * WINDOWS + r) as u32,
            update: graphmine_graph::GraphUpdate::RelabelVertex {
                v: 0,
                label: 100 + (w * WINDOWS + r) as u32,
            },
        }]
    };

    {
        let (engine, _) = ServeEngine::boot(Some(&db), dir.path(), &cfg).unwrap();
        let engine = Arc::new(engine);
        let acked: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..WRITERS)
                .map(|w| {
                    let engine = Arc::clone(&engine);
                    s.spawn(move || {
                        (0..WINDOWS)
                            .map(|r| engine.submit_window(&window(w, r)).unwrap().seq)
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        let mut seqs = acked.clone();
        seqs.sort_unstable();
        assert_eq!(seqs, (1..=(WRITERS * WINDOWS) as u64).collect::<Vec<_>>());
        // Durable acks only — the kill may land before application.
        drop(engine);
    }

    let (engine, boot) = ServeEngine::boot(None, dir.path(), &cfg).unwrap();
    assert_eq!(boot.replayed, WRITERS * WINDOWS, "every durable ack must replay");
    assert_eq!(boot.epoch, (WRITERS * WINDOWS) as u64);
    let all_ops: Vec<DbUpdate> =
        (0..WRITERS).flat_map(|w| (0..WINDOWS).flat_map(move |r| window(w, r))).collect();
    let reference = batch_incremental(&db, cfg.min_support, &[all_ops]);
    assert!(
        engine.current().patterns.same_codes_and_supports(&reference),
        "recovered result diverges from the batch pipeline on the same windows"
    );
}

#[test]
fn clean_shutdown_then_crash_replays_nothing_twice() {
    let dir = tempfile::tempdir().unwrap();
    let db = test_db();
    let cfg = engine_cfg(&db);
    let (batch1, batch2) = two_batches(&db, 31);

    // Batch 1, clean stop (folds it into the snapshot), then batch 2
    // and a kill: recovery must replay batch 2 on top of the batch-1
    // snapshot — once.
    {
        let (engine, _) = ServeEngine::boot(Some(&db), dir.path(), &cfg).unwrap();
        engine.apply_update(&batch1).unwrap();
        engine.clean_stop().unwrap();
    }
    {
        let (engine, boot) = ServeEngine::boot(None, dir.path(), &cfg).unwrap();
        assert_eq!(boot.replayed, 0);
        assert_eq!(boot.epoch, 1);
        engine.apply_update(&batch2).unwrap();
        // Dropped without clean_stop: the kill.
    }
    let (engine, boot) = ServeEngine::boot(None, dir.path(), &cfg).unwrap();
    assert_eq!(boot.replayed, 1);
    assert_eq!(boot.epoch, 2);
    let reference = batch_incremental(&db, cfg.min_support, &[batch1, batch2]);
    assert!(engine.current().patterns.same_codes_and_supports(&reference));
}

#[test]
fn support_queries_agree_with_isomorphism_search_across_updates() {
    let dir = tempfile::tempdir().unwrap();
    let db = test_db();
    let cfg = engine_cfg(&db);
    let (engine, _) = ServeEngine::boot(Some(&db), dir.path(), &cfg).unwrap();
    let handle = start(Arc::new(engine), &ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let ops = update_plan(&db, 41);
    client.update(&ops).unwrap();

    // Ask for the support of currently frequent patterns and check each
    // against a plain isomorphism count on the updated database.
    let updated = handle.engine().current();
    let mut asked = 0;
    for pattern in updated.patterns.iter().take(20) {
        let resp = client.support(&pattern.code).unwrap();
        let got = resp.field("support").and_then(JsonValue::as_num).unwrap();
        let want = graphmine_graph::iso::support(&updated.db, &pattern.code);
        assert_eq!(got, u64::from(want), "code {:?}", pattern.code);
        assert_eq!(resp.field("source").and_then(JsonValue::as_str), Some("patterns"));
        asked += 1;
    }
    assert!(asked > 0);

    client.shutdown().unwrap();
    handle.wait().unwrap();
}
