//! An append-only record store over pages.
//!
//! Records are opaque byte strings packed contiguously into the page
//! stream; `append` returns the `(offset, len)` handle needed to `read` the
//! record back. [`crate::GraphStore`] stores serialized graphs this way,
//! and the ADI index stores its edge posting lists the same way.

use std::path::Path;
use std::time::Duration;

use crate::{BufferPool, PageFile, PoolStats, StorageError, PAGE_SIZE};

/// Handle to a stored record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordId {
    /// Byte offset of the record in the stream.
    pub offset: u64,
    /// Record length in bytes.
    pub len: u32,
}

/// An append-only byte-record store backed by a buffer pool.
pub struct ByteStore {
    pool: BufferPool,
    cursor: u64,
}

impl ByteStore {
    /// Creates an empty store at `path` with a pool of `pool_pages` pages
    /// and a simulated per-page I/O latency.
    ///
    /// # Errors
    ///
    /// Propagates file-system failures.
    pub fn create(
        path: &Path,
        pool_pages: usize,
        io_latency: Duration,
    ) -> Result<Self, StorageError> {
        let mut file = PageFile::create(path)?;
        file.set_io_latency(io_latency);
        Ok(ByteStore { pool: BufferPool::new(file, pool_pages), cursor: 0 })
    }

    /// Reopens an existing store at `path`, resuming appends at
    /// `logical_len` (the number of valid bytes in the stream — callers
    /// persist this out of band or rediscover it by scanning, as the
    /// update journal does).
    ///
    /// # Errors
    ///
    /// File-system failures, a misaligned file, or a `logical_len` beyond
    /// the file's capacity.
    pub fn open(
        path: &Path,
        pool_pages: usize,
        logical_len: u64,
        io_latency: Duration,
    ) -> Result<Self, StorageError> {
        let mut file = PageFile::open(path)?;
        file.set_io_latency(io_latency);
        let capacity = file.page_count() * PAGE_SIZE as u64;
        if logical_len > capacity {
            return Err(StorageError::Corrupt(format!(
                "logical length {logical_len} beyond file capacity {capacity}"
            )));
        }
        Ok(ByteStore { pool: BufferPool::new(file, pool_pages), cursor: logical_len })
    }

    /// Appends a record, returning its handle.
    ///
    /// # Errors
    ///
    /// Propagates allocation and write failures.
    pub fn append(&mut self, bytes: &[u8]) -> Result<RecordId, StorageError> {
        let id = RecordId { offset: self.cursor, len: bytes.len() as u32 };
        write_stream(&self.pool, self.cursor, bytes)?;
        self.cursor += bytes.len() as u64;
        Ok(id)
    }

    /// Reads a record back.
    ///
    /// # Errors
    ///
    /// Out-of-range handles and read failures.
    pub fn read(&self, id: RecordId) -> Result<Vec<u8>, StorageError> {
        if id.offset + u64::from(id.len) > self.cursor {
            return Err(StorageError::Corrupt(format!(
                "record at {}+{} beyond stream end {}",
                id.offset, id.len, self.cursor
            )));
        }
        let mut buf = vec![0u8; id.len as usize];
        read_stream(&self.pool, id.offset, &mut buf)?;
        Ok(buf)
    }

    /// Total bytes appended.
    pub fn len_bytes(&self) -> u64 {
        self.cursor
    }

    /// Writes all dirty pages back and syncs them to stable storage (the
    /// pool flush ends in [`PageFile::sync`], a real `fdatasync`).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn flush(&self) -> Result<(), StorageError> {
        self.pool.flush()
    }

    /// I/O counters of the pool.
    pub fn stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Resets the I/O counters.
    pub fn reset_stats(&self) {
        self.pool.reset_stats()
    }

    /// Pages backing the store.
    pub fn page_count(&self) -> u64 {
        self.pool.page_count()
    }
}

/// Writes `bytes` at stream offset `off`, allocating pages as needed.
pub(crate) fn write_stream(pool: &BufferPool, off: u64, bytes: &[u8]) -> Result<(), StorageError> {
    let end = off + bytes.len() as u64;
    let pages_needed = end.div_ceil(PAGE_SIZE as u64);
    while pool.page_count() < pages_needed {
        pool.allocate()?;
    }
    let mut written = 0usize;
    let mut cur = off;
    while written < bytes.len() {
        let pid = cur / PAGE_SIZE as u64;
        let in_page = (cur % PAGE_SIZE as u64) as usize;
        let n = (PAGE_SIZE - in_page).min(bytes.len() - written);
        pool.with_page_mut(pid, |pg| {
            pg[in_page..in_page + n].copy_from_slice(&bytes[written..written + n]);
        })?;
        written += n;
        cur += n as u64;
    }
    Ok(())
}

/// Reads `buf.len()` bytes at stream offset `off`.
pub(crate) fn read_stream(pool: &BufferPool, off: u64, buf: &mut [u8]) -> Result<(), StorageError> {
    let mut read = 0usize;
    let mut cur = off;
    while read < buf.len() {
        let pid = cur / PAGE_SIZE as u64;
        let in_page = (cur % PAGE_SIZE as u64) as usize;
        let n = (PAGE_SIZE - in_page).min(buf.len() - read);
        pool.with_page(pid, |pg| {
            buf[read..read + n].copy_from_slice(&pg[in_page..in_page + n]);
        })?;
        read += n;
        cur += n as u64;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ByteStore {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("b.db");
        std::mem::forget(dir);
        ByteStore::create(&path, 4, Duration::ZERO).unwrap()
    }

    #[test]
    fn append_read_round_trip() {
        let mut s = store();
        let a = s.append(b"hello").unwrap();
        let b = s.append(&[0u8; 10_000]).unwrap(); // spans pages
        let c = s.append(b"world").unwrap();
        assert_eq!(s.read(a).unwrap(), b"hello");
        assert_eq!(s.read(b).unwrap(), vec![0u8; 10_000]);
        assert_eq!(s.read(c).unwrap(), b"world");
        assert_eq!(s.len_bytes(), 5 + 10_000 + 5);
    }

    #[test]
    fn out_of_range_read_errors() {
        let mut s = store();
        s.append(b"x").unwrap();
        let bad = RecordId { offset: 0, len: 99 };
        assert!(matches!(s.read(bad), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn empty_record() {
        let mut s = store();
        let id = s.append(b"").unwrap();
        assert_eq!(s.read(id).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn reopen_resumes_appends() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("b.db");
        let (a, len) = {
            let mut s = ByteStore::create(&path, 4, Duration::ZERO).unwrap();
            let a = s.append(b"persisted").unwrap();
            s.flush().unwrap();
            (a, s.len_bytes())
        };
        let mut s = ByteStore::open(&path, 4, len, Duration::ZERO).unwrap();
        assert_eq!(s.read(a).unwrap(), b"persisted");
        let b = s.append(b"appended-after-reopen").unwrap();
        assert_eq!(s.read(b).unwrap(), b"appended-after-reopen");
        assert_eq!(b.offset, len, "cursor resumed at the logical end");
    }

    #[test]
    fn reopen_rejects_len_beyond_capacity() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("b.db");
        {
            let mut s = ByteStore::create(&path, 4, Duration::ZERO).unwrap();
            s.append(b"x").unwrap();
            s.flush().unwrap();
        }
        let r = ByteStore::open(&path, 4, 10 * PAGE_SIZE as u64, Duration::ZERO);
        assert!(matches!(r, Err(StorageError::Corrupt(_))));
    }
}
