use std::fmt;
use std::io;

/// Errors from the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// A page id beyond the allocated range.
    PageOutOfRange {
        /// The offending page id.
        page: u64,
        /// Number of allocated pages.
        len: u64,
    },
    /// A serialized record did not decode (truncated or corrupt).
    Corrupt(String),
    /// A graph id beyond the stored database.
    GraphOutOfRange {
        /// The offending graph id.
        gid: u32,
        /// Number of stored graphs.
        len: u32,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::PageOutOfRange { page, len } => {
                write!(f, "page {page} out of range ({len} allocated)")
            }
            StorageError::Corrupt(what) => write!(f, "corrupt record: {what}"),
            StorageError::GraphOutOfRange { gid, len } => {
                write!(f, "graph {gid} out of range ({len} stored)")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}
