//! A page-granular file store.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::time::Duration;

use crate::StorageError;

/// Page size in bytes. 4 KiB matches the usual filesystem block size.
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page within a [`PageFile`].
pub type PageId = u64;

/// A file divided into fixed-size pages, the unit of I/O for the buffer
/// pool. All reads and writes are whole pages.
#[derive(Debug)]
pub struct PageFile {
    file: File,
    pages: u64,
    io_latency: Duration,
}

impl PageFile {
    /// Creates (truncating) a page file at `path`.
    ///
    /// # Errors
    ///
    /// Any file-system error opening the file.
    pub fn create(path: &Path) -> Result<Self, StorageError> {
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        Ok(PageFile { file, pages: 0, io_latency: Duration::ZERO })
    }

    /// Opens an existing page file.
    ///
    /// # Errors
    ///
    /// File-system errors, or a file whose size is not page-aligned.
    pub fn open(path: &Path) -> Result<Self, StorageError> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "file length {len} is not a multiple of the page size"
            )));
        }
        Ok(PageFile { file, pages: len / PAGE_SIZE as u64, io_latency: Duration::ZERO })
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> u64 {
        self.pages
    }

    /// Sets a simulated latency charged to every page read and write.
    ///
    /// Modern page caches make file I/O effectively free at benchmark
    /// scale; experiments that model the paper's 2006 disk/CPU ratio (a
    /// spinning 73 GB disk against a P4) set this to restore the cost of a
    /// genuine disk access. Zero (the default) disables the simulation.
    pub fn set_io_latency(&mut self, latency: Duration) {
        self.io_latency = latency;
    }

    /// The simulated per-access latency.
    pub fn io_latency(&self) -> Duration {
        self.io_latency
    }

    #[inline]
    fn charge_io(&self) {
        if !self.io_latency.is_zero() {
            // Spin rather than sleep: OS sleep granularity (~50 µs+) would
            // distort sub-100 µs latencies, and a blocked I/O thread does
            // not yield useful work either way.
            let start = std::time::Instant::now();
            while start.elapsed() < self.io_latency {
                std::hint::spin_loop();
            }
        }
    }

    /// Allocates a fresh zeroed page at the end of the file.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn allocate(&mut self) -> Result<PageId, StorageError> {
        let pid = self.pages;
        self.file.seek(SeekFrom::Start(pid * PAGE_SIZE as u64))?;
        self.file.write_all(&[0u8; PAGE_SIZE])?;
        self.pages += 1;
        Ok(pid)
    }

    /// Reads page `pid` into `buf`.
    ///
    /// # Errors
    ///
    /// Out-of-range page ids and read failures.
    pub fn read_page(
        &mut self,
        pid: PageId,
        buf: &mut [u8; PAGE_SIZE],
    ) -> Result<(), StorageError> {
        if pid >= self.pages {
            return Err(StorageError::PageOutOfRange { page: pid, len: self.pages });
        }
        self.charge_io();
        self.file.seek(SeekFrom::Start(pid * PAGE_SIZE as u64))?;
        self.file.read_exact(buf)?;
        Ok(())
    }

    /// Writes `buf` to page `pid`.
    ///
    /// # Errors
    ///
    /// Out-of-range page ids and write failures.
    pub fn write_page(&mut self, pid: PageId, buf: &[u8; PAGE_SIZE]) -> Result<(), StorageError> {
        if pid >= self.pages {
            return Err(StorageError::PageOutOfRange { page: pid, len: self.pages });
        }
        self.charge_io();
        self.file.seek(SeekFrom::Start(pid * PAGE_SIZE as u64))?;
        self.file.write_all(buf)?;
        Ok(())
    }

    /// Flushes buffered writes and forces them to stable storage
    /// (`fdatasync`). Durability paths — the update journal, snapshot
    /// writes — rely on this being a real sync, not just a library flush.
    ///
    /// # Errors
    ///
    /// Propagates `fsync` failures.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.file.flush()?;
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_write_read_round_trip() {
        let dir = tempfile::tempdir().unwrap();
        let mut f = PageFile::create(&dir.path().join("p.db")).unwrap();
        let p0 = f.allocate().unwrap();
        let p1 = f.allocate().unwrap();
        assert_eq!((p0, p1), (0, 1));
        let mut buf = [0u8; PAGE_SIZE];
        buf[0] = 0xAB;
        buf[PAGE_SIZE - 1] = 0xCD;
        f.write_page(p1, &buf).unwrap();
        let mut out = [0u8; PAGE_SIZE];
        f.read_page(p1, &mut out).unwrap();
        assert_eq!(out[0], 0xAB);
        assert_eq!(out[PAGE_SIZE - 1], 0xCD);
        // Fresh pages read back zeroed.
        f.read_page(p0, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn out_of_range_is_an_error() {
        let dir = tempfile::tempdir().unwrap();
        let mut f = PageFile::create(&dir.path().join("p.db")).unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        assert!(matches!(f.read_page(0, &mut buf), Err(StorageError::PageOutOfRange { .. })));
        assert!(matches!(f.write_page(3, &buf), Err(StorageError::PageOutOfRange { .. })));
    }

    #[test]
    fn reopen_preserves_pages() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("p.db");
        {
            let mut f = PageFile::create(&path).unwrap();
            f.allocate().unwrap();
            let mut buf = [0u8; PAGE_SIZE];
            buf[7] = 7;
            f.write_page(0, &buf).unwrap();
            f.sync().unwrap();
        }
        let mut f = PageFile::open(&path).unwrap();
        assert_eq!(f.page_count(), 1);
        let mut out = [0u8; PAGE_SIZE];
        f.read_page(0, &mut out).unwrap();
        assert_eq!(out[7], 7);
    }

    #[test]
    fn open_rejects_misaligned_file() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("bad.db");
        std::fs::write(&path, [0u8; 100]).unwrap();
        assert!(matches!(PageFile::open(&path), Err(StorageError::Corrupt(_))));
    }
}
