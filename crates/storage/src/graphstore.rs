//! Serialized graph databases over pages.
//!
//! Graphs are encoded as little-endian `u32` records —
//! `[nv, vlabel*nv, ne, (u, v, elabel)*ne]` — packed contiguously into a
//! byte stream laid out across pages. The per-graph offset directory stays
//! in memory (it is `O(|D|)`, the part of an index that fits in RAM);
//! everything else is read through the buffer pool, so per-graph random
//! access — the access pattern of index-backed mining — is properly charged
//! page faults.

use std::path::Path;
use std::time::Duration;

use graphmine_graph::{Graph, GraphDb};

use crate::bytestore::{read_stream, write_stream};
use crate::{BufferPool, PageFile, PoolStats, StorageError};

/// A read-mostly, page-resident graph database.
pub struct GraphStore {
    pool: BufferPool,
    offsets: Vec<u64>,
    lens: Vec<u32>,
}

impl GraphStore {
    /// Serializes `db` into a fresh page file at `path`, buffered by a pool
    /// of `pool_pages` pages.
    ///
    /// # Errors
    ///
    /// Propagates file-system failures.
    pub fn create(path: &Path, db: &GraphDb, pool_pages: usize) -> Result<Self, StorageError> {
        Self::create_with_latency(path, db, pool_pages, Duration::ZERO)
    }

    /// Like [`GraphStore::create`] with a simulated per-page I/O latency
    /// (see [`PageFile::set_io_latency`]); the serialization pass itself is
    /// charged for its writes, as building a disk-resident index would be.
    ///
    /// # Errors
    ///
    /// Propagates file-system failures.
    pub fn create_with_latency(
        path: &Path,
        db: &GraphDb,
        pool_pages: usize,
        io_latency: Duration,
    ) -> Result<Self, StorageError> {
        let mut file = PageFile::create(path)?;
        file.set_io_latency(io_latency);
        let pool = BufferPool::new(file, pool_pages);
        let mut offsets = Vec::with_capacity(db.len());
        let mut lens = Vec::with_capacity(db.len());
        let mut cursor = 0u64;
        for (_, g) in db.iter() {
            let bytes = encode(g);
            offsets.push(cursor);
            lens.push(bytes.len() as u32);
            write_stream(&pool, cursor, &bytes)?;
            cursor += bytes.len() as u64;
        }
        pool.flush()?;
        let store = GraphStore { pool, offsets, lens };
        Ok(store)
    }

    /// Number of stored graphs.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// `true` when no graphs are stored.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Reads and decodes graph `gid` through the buffer pool.
    ///
    /// # Errors
    ///
    /// Out-of-range gids, I/O failures, and corrupt records.
    pub fn read_graph(&self, gid: u32) -> Result<Graph, StorageError> {
        let idx = gid as usize;
        if idx >= self.offsets.len() {
            return Err(StorageError::GraphOutOfRange { gid, len: self.offsets.len() as u32 });
        }
        let mut bytes = vec![0u8; self.lens[idx] as usize];
        read_stream(&self.pool, self.offsets[idx], &mut bytes)?;
        decode(&bytes)
    }

    /// Reads the whole database back (a full scan).
    ///
    /// # Errors
    ///
    /// Propagates per-graph read failures.
    pub fn read_all(&self) -> Result<GraphDb, StorageError> {
        (0..self.len() as u32).map(|gid| self.read_graph(gid)).collect::<Result<GraphDb, _>>()
    }

    /// I/O counters of the underlying pool.
    pub fn stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Resets the I/O counters.
    pub fn reset_stats(&self) {
        self.pool.reset_stats()
    }

    /// Total pages backing the store.
    pub fn page_count(&self) -> u64 {
        self.pool.page_count()
    }
}

fn encode(g: &Graph) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 4 * (g.vertex_count() + 3 * g.edge_count()));
    push_u32(&mut out, g.vertex_count() as u32);
    for v in 0..g.vertex_count() as u32 {
        push_u32(&mut out, g.vlabel(v));
    }
    push_u32(&mut out, g.edge_count() as u32);
    for (_, u, v, el) in g.edges() {
        push_u32(&mut out, u);
        push_u32(&mut out, v);
        push_u32(&mut out, el);
    }
    out
}

fn decode(bytes: &[u8]) -> Result<Graph, StorageError> {
    let mut pos = 0usize;
    let nv = take_u32(bytes, &mut pos)?;
    let mut g = Graph::with_capacity(nv as usize, 0);
    for _ in 0..nv {
        let l = take_u32(bytes, &mut pos)?;
        g.add_vertex(l);
    }
    let ne = take_u32(bytes, &mut pos)?;
    for _ in 0..ne {
        let u = take_u32(bytes, &mut pos)?;
        let v = take_u32(bytes, &mut pos)?;
        let el = take_u32(bytes, &mut pos)?;
        g.add_edge(u, v, el).map_err(|e| StorageError::Corrupt(format!("bad edge record: {e}")))?;
    }
    Ok(g)
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn take_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, StorageError> {
    let end = *pos + 4;
    let slice =
        bytes.get(*pos..end).ok_or_else(|| StorageError::Corrupt("truncated u32".into()))?;
    *pos = end;
    Ok(u32::from_le_bytes(slice.try_into().expect("4-byte slice")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db(n: usize) -> GraphDb {
        let mut graphs = Vec::new();
        for i in 0..n {
            let mut g = Graph::new();
            let k = 3 + (i % 5);
            for j in 0..k {
                g.add_vertex((i + j) as u32 % 7);
            }
            for j in 1..k {
                g.add_edge(j as u32, (j - 1) as u32, (i % 3) as u32).unwrap();
            }
            graphs.push(g);
        }
        GraphDb::from_graphs(graphs)
    }

    #[test]
    fn round_trip_every_graph() {
        let dir = tempfile::tempdir().unwrap();
        let db = sample_db(50);
        let store = GraphStore::create(&dir.path().join("g.db"), &db, 8).unwrap();
        assert_eq!(store.len(), 50);
        for gid in 0..50u32 {
            let g = store.read_graph(gid).unwrap();
            assert_eq!(&g, db.graph(gid), "gid {gid}");
        }
    }

    #[test]
    fn read_all_round_trips() {
        let dir = tempfile::tempdir().unwrap();
        let db = sample_db(20);
        let store = GraphStore::create(&dir.path().join("g.db"), &db, 4).unwrap();
        let back = store.read_all().unwrap();
        assert_eq!(back.len(), db.len());
        for gid in 0..20u32 {
            assert_eq!(back.graph(gid), db.graph(gid));
        }
    }

    #[test]
    fn small_pool_faults_pages() {
        let dir = tempfile::tempdir().unwrap();
        let db = sample_db(200);
        let store = GraphStore::create(&dir.path().join("g.db"), &db, 1).unwrap();
        store.reset_stats();
        for gid in (0..200u32).rev() {
            store.read_graph(gid).unwrap();
        }
        let s = store.stats();
        assert!(s.disk_reads > 0, "reads go through the (tiny) pool: {s:?}");
    }

    #[test]
    fn bad_gid_is_an_error() {
        let dir = tempfile::tempdir().unwrap();
        let db = sample_db(3);
        let store = GraphStore::create(&dir.path().join("g.db"), &db, 4).unwrap();
        assert!(matches!(store.read_graph(9), Err(StorageError::GraphOutOfRange { .. })));
    }

    #[test]
    fn empty_database() {
        let dir = tempfile::tempdir().unwrap();
        let store = GraphStore::create(&dir.path().join("g.db"), &GraphDb::new(), 4).unwrap();
        assert!(store.is_empty());
        assert!(store.read_all().unwrap().is_empty());
    }
}
