//! Serialized graph databases over pages.
//!
//! Graphs are encoded as little-endian `u32` records —
//! `[nv, vlabel*nv, ne, (u, v, elabel)*ne]` — packed contiguously into a
//! byte stream laid out across pages. The per-graph offset directory stays
//! in memory (it is `O(|D|)`, the part of an index that fits in RAM);
//! everything else is read through the buffer pool, so per-graph random
//! access — the access pattern of index-backed mining — is properly charged
//! page faults.

use std::path::Path;
use std::time::Duration;

use graphmine_graph::{Graph, GraphDb};

use crate::bytestore::{read_stream, write_stream};
use crate::{BufferPool, PageFile, PoolStats, StorageError, PAGE_SIZE};

/// Magic bytes at offset 0 of every store file.
const MAGIC: [u8; 4] = *b"GMGS";
/// On-disk format version.
const VERSION: u32 = 1;

/// A read-mostly, page-resident graph database.
pub struct GraphStore {
    pool: BufferPool,
    offsets: Vec<u64>,
    lens: Vec<u32>,
}

impl GraphStore {
    /// Serializes `db` into a fresh page file at `path`, buffered by a pool
    /// of `pool_pages` pages.
    ///
    /// # Errors
    ///
    /// Propagates file-system failures.
    pub fn create(path: &Path, db: &GraphDb, pool_pages: usize) -> Result<Self, StorageError> {
        Self::create_with_latency(path, db, pool_pages, Duration::ZERO)
    }

    /// Like [`GraphStore::create`] with a simulated per-page I/O latency
    /// (see [`PageFile::set_io_latency`]); the serialization pass itself is
    /// charged for its writes, as building a disk-resident index would be.
    ///
    /// # Errors
    ///
    /// Propagates file-system failures.
    pub fn create_with_latency(
        path: &Path,
        db: &GraphDb,
        pool_pages: usize,
        io_latency: Duration,
    ) -> Result<Self, StorageError> {
        let mut file = PageFile::create(path)?;
        file.set_io_latency(io_latency);
        let pool = BufferPool::new(file, pool_pages);
        let mut offsets = Vec::with_capacity(db.len());
        let mut lens = Vec::with_capacity(db.len());
        // Page 0 is the header; records start on the next page boundary so
        // re-opening knows where to scan from.
        let mut cursor = PAGE_SIZE as u64;
        for (_, g) in db.iter() {
            let bytes = encode(g);
            offsets.push(cursor);
            lens.push(bytes.len() as u32);
            write_stream(&pool, cursor, &bytes)?;
            cursor += bytes.len() as u64;
        }
        let mut header = Vec::with_capacity(20);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&(db.len() as u32).to_le_bytes());
        header.extend_from_slice(&(cursor - PAGE_SIZE as u64).to_le_bytes());
        write_stream(&pool, 0, &header)?;
        pool.flush()?;
        let store = GraphStore { pool, offsets, lens };
        Ok(store)
    }

    /// Reopens a store previously written by [`GraphStore::create`],
    /// rebuilding the in-memory offset directory by scanning the
    /// self-delimiting records — the recovery path the serving daemon takes
    /// to reload its snapshot.
    ///
    /// # Errors
    ///
    /// File-system failures, a missing/foreign header, or records that do
    /// not span exactly the length the header declares.
    pub fn open(path: &Path, pool_pages: usize) -> Result<Self, StorageError> {
        let file = PageFile::open(path)?;
        if file.page_count() == 0 {
            return Err(StorageError::Corrupt("store file has no header page".into()));
        }
        let pool = BufferPool::new(file, pool_pages);
        let mut header = [0u8; 20];
        read_stream(&pool, 0, &mut header)?;
        if header[..4] != MAGIC {
            return Err(StorageError::Corrupt("not a graph store file (bad magic)".into()));
        }
        let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(StorageError::Corrupt(format!("unsupported store version {version}")));
        }
        let count = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        let data_len = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
        let end = PAGE_SIZE as u64 + data_len;
        if end > pool.page_count() * PAGE_SIZE as u64 {
            return Err(StorageError::Corrupt(format!(
                "header declares {data_len} data bytes beyond the file"
            )));
        }
        let mut offsets = Vec::with_capacity(count as usize);
        let mut lens = Vec::with_capacity(count as usize);
        let mut cursor = PAGE_SIZE as u64;
        for gid in 0..count {
            let nv = read_u32_at(&pool, cursor, end)?;
            let ne = read_u32_at(&pool, cursor + 4 + 4 * u64::from(nv), end)?;
            let len = 8 + 4 * u64::from(nv) + 12 * u64::from(ne);
            if cursor + len > end {
                return Err(StorageError::Corrupt(format!(
                    "record {gid} runs past the declared data length"
                )));
            }
            offsets.push(cursor);
            lens.push(len as u32);
            cursor += len;
        }
        if cursor != end {
            return Err(StorageError::Corrupt(format!(
                "records cover {} bytes but the header declares {data_len}",
                cursor - PAGE_SIZE as u64
            )));
        }
        Ok(GraphStore { pool, offsets, lens })
    }

    /// Number of stored graphs.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// `true` when no graphs are stored.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Reads and decodes graph `gid` through the buffer pool.
    ///
    /// # Errors
    ///
    /// Out-of-range gids, I/O failures, and corrupt records.
    pub fn read_graph(&self, gid: u32) -> Result<Graph, StorageError> {
        let idx = gid as usize;
        if idx >= self.offsets.len() {
            return Err(StorageError::GraphOutOfRange { gid, len: self.offsets.len() as u32 });
        }
        let mut bytes = vec![0u8; self.lens[idx] as usize];
        read_stream(&self.pool, self.offsets[idx], &mut bytes)?;
        decode(&bytes)
    }

    /// Reads the whole database back (a full scan).
    ///
    /// # Errors
    ///
    /// Propagates per-graph read failures.
    pub fn read_all(&self) -> Result<GraphDb, StorageError> {
        (0..self.len() as u32).map(|gid| self.read_graph(gid)).collect::<Result<GraphDb, _>>()
    }

    /// I/O counters of the underlying pool.
    pub fn stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Resets the I/O counters.
    pub fn reset_stats(&self) {
        self.pool.reset_stats()
    }

    /// Total pages backing the store.
    pub fn page_count(&self) -> u64 {
        self.pool.page_count()
    }
}

/// Reads a little-endian `u32` at stream offset `off`, refusing to read
/// past `end` (the declared end of record data).
fn read_u32_at(pool: &BufferPool, off: u64, end: u64) -> Result<u32, StorageError> {
    if off + 4 > end {
        return Err(StorageError::Corrupt("record header runs past the data length".into()));
    }
    let mut buf = [0u8; 4];
    read_stream(pool, off, &mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn encode(g: &Graph) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 4 * (g.vertex_count() + 3 * g.edge_count()));
    push_u32(&mut out, g.vertex_count() as u32);
    for v in 0..g.vertex_count() as u32 {
        push_u32(&mut out, g.vlabel(v));
    }
    push_u32(&mut out, g.edge_count() as u32);
    for (_, u, v, el) in g.edges() {
        push_u32(&mut out, u);
        push_u32(&mut out, v);
        push_u32(&mut out, el);
    }
    out
}

fn decode(bytes: &[u8]) -> Result<Graph, StorageError> {
    let mut pos = 0usize;
    let nv = take_u32(bytes, &mut pos)?;
    let mut g = Graph::with_capacity(nv as usize, 0);
    for _ in 0..nv {
        let l = take_u32(bytes, &mut pos)?;
        g.add_vertex(l);
    }
    let ne = take_u32(bytes, &mut pos)?;
    for _ in 0..ne {
        let u = take_u32(bytes, &mut pos)?;
        let v = take_u32(bytes, &mut pos)?;
        let el = take_u32(bytes, &mut pos)?;
        g.add_edge(u, v, el).map_err(|e| StorageError::Corrupt(format!("bad edge record: {e}")))?;
    }
    Ok(g)
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn take_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, StorageError> {
    let end = *pos + 4;
    let slice =
        bytes.get(*pos..end).ok_or_else(|| StorageError::Corrupt("truncated u32".into()))?;
    *pos = end;
    Ok(u32::from_le_bytes(slice.try_into().expect("4-byte slice")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db(n: usize) -> GraphDb {
        let mut graphs = Vec::new();
        for i in 0..n {
            let mut g = Graph::new();
            let k = 3 + (i % 5);
            for j in 0..k {
                g.add_vertex((i + j) as u32 % 7);
            }
            for j in 1..k {
                g.add_edge(j as u32, (j - 1) as u32, (i % 3) as u32).unwrap();
            }
            graphs.push(g);
        }
        GraphDb::from_graphs(graphs)
    }

    #[test]
    fn round_trip_every_graph() {
        let dir = tempfile::tempdir().unwrap();
        let db = sample_db(50);
        let store = GraphStore::create(&dir.path().join("g.db"), &db, 8).unwrap();
        assert_eq!(store.len(), 50);
        for gid in 0..50u32 {
            let g = store.read_graph(gid).unwrap();
            assert_eq!(&g, db.graph(gid), "gid {gid}");
        }
    }

    #[test]
    fn read_all_round_trips() {
        let dir = tempfile::tempdir().unwrap();
        let db = sample_db(20);
        let store = GraphStore::create(&dir.path().join("g.db"), &db, 4).unwrap();
        let back = store.read_all().unwrap();
        assert_eq!(back.len(), db.len());
        for gid in 0..20u32 {
            assert_eq!(back.graph(gid), db.graph(gid));
        }
    }

    #[test]
    fn small_pool_faults_pages() {
        let dir = tempfile::tempdir().unwrap();
        let db = sample_db(200);
        let store = GraphStore::create(&dir.path().join("g.db"), &db, 1).unwrap();
        store.reset_stats();
        for gid in (0..200u32).rev() {
            store.read_graph(gid).unwrap();
        }
        let s = store.stats();
        assert!(s.disk_reads > 0, "reads go through the (tiny) pool: {s:?}");
    }

    #[test]
    fn bad_gid_is_an_error() {
        let dir = tempfile::tempdir().unwrap();
        let db = sample_db(3);
        let store = GraphStore::create(&dir.path().join("g.db"), &db, 4).unwrap();
        assert!(matches!(store.read_graph(9), Err(StorageError::GraphOutOfRange { .. })));
    }

    #[test]
    fn empty_database() {
        let dir = tempfile::tempdir().unwrap();
        let store = GraphStore::create(&dir.path().join("g.db"), &GraphDb::new(), 4).unwrap();
        assert!(store.is_empty());
        assert!(store.read_all().unwrap().is_empty());
    }

    #[test]
    fn create_drop_open_round_trip() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("g.db");
        let db = sample_db(40);
        {
            let store = GraphStore::create(&path, &db, 8).unwrap();
            assert_eq!(store.len(), 40);
        } // dropped: only the file remains
        let store = GraphStore::open(&path, 8).unwrap();
        assert_eq!(store.len(), 40);
        for gid in 0..40u32 {
            assert_eq!(&store.read_graph(gid).unwrap(), db.graph(gid), "gid {gid}");
        }
        assert_eq!(store.read_all().unwrap().len(), db.len());
    }

    #[test]
    fn open_empty_store() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("g.db");
        drop(GraphStore::create(&path, &GraphDb::new(), 4).unwrap());
        let store = GraphStore::open(&path, 4).unwrap();
        assert!(store.is_empty());
    }

    #[test]
    fn open_rejects_foreign_files() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("junk.db");
        std::fs::write(&path, vec![0x5Au8; crate::PAGE_SIZE]).unwrap();
        assert!(matches!(GraphStore::open(&path, 4), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn open_rejects_truncated_header() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("empty.db");
        std::fs::write(&path, Vec::<u8>::new()).unwrap();
        assert!(matches!(GraphStore::open(&path, 4), Err(StorageError::Corrupt(_))));
    }
}
