//! Write-ahead journal for database update batches.
//!
//! The serving daemon acknowledges an `update` request only after the batch
//! has reached stable storage. The journal provides that guarantee on top of
//! [`ByteStore`]: each batch is framed as
//!
//! ```text
//! [len: u32 LE] [crc32: u32 LE] [payload: len bytes]
//! payload = [seq: u64 LE] [n: u32 LE] [n × op]
//! op      = [gid: u32 LE] [tag: u8] [a: u32 LE] [b: u32 LE] [c: u32 LE]
//! ```
//!
//! with a CRC-32 (IEEE) over the payload. `append_batch` flushes and
//! fsyncs before returning, so a returned sequence number means the batch
//! survives a crash. [`UpdateJournal::recover`] rebuilds the acknowledged
//! prefix by scanning frames and stops at the first zero/oversized length or
//! CRC mismatch — a torn tail from a crash mid-write is zeroed and ignored,
//! never replayed.

use std::path::{Path, PathBuf};
use std::time::Duration;

use graphmine_graph::{DbUpdate, GraphUpdate};

use crate::{ByteStore, StorageError, PAGE_SIZE};

/// Frame header bytes: `len` + `crc32`.
const FRAME_HEADER: usize = 8;
/// Bytes per serialized op: gid + tag + three `u32` arguments.
const OP_BYTES: usize = 17;
/// Upper bound on a sane frame payload; larger lengths are treated as a
/// torn/corrupt tail rather than attempted.
const MAX_FRAME: u32 = 64 << 20;

/// One recovered (or to-be-written) journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalBatch {
    /// Monotonic batch sequence number (1-based).
    pub seq: u64,
    /// The updates of the batch, in application order.
    pub updates: Vec<DbUpdate>,
}

/// An fsync-before-ack write-ahead log of [`DbUpdate`] batches.
pub struct UpdateJournal {
    store: ByteStore,
    path: PathBuf,
    pool_pages: usize,
    next_seq: u64,
}

impl UpdateJournal {
    /// Creates an empty journal at `path` (truncating any existing file).
    ///
    /// # Errors
    ///
    /// Propagates file-system failures.
    pub fn create(path: &Path, pool_pages: usize) -> Result<Self, StorageError> {
        let store = ByteStore::create(path, pool_pages, Duration::ZERO)?;
        Ok(UpdateJournal { store, path: path.to_path_buf(), pool_pages, next_seq: 1 })
    }

    /// Opens the journal at `path`, replaying every intact frame. Returns
    /// the journal (positioned after the last intact frame) and the
    /// recovered batches in order. A torn tail — a partially written frame
    /// left by a crash during `append_batch` — is zeroed and ignored. A
    /// missing file yields an empty journal.
    ///
    /// # Errors
    ///
    /// Propagates file-system failures.
    pub fn recover(
        path: &Path,
        pool_pages: usize,
    ) -> Result<(Self, Vec<JournalBatch>), StorageError> {
        if !path.exists() {
            return Ok((Self::create(path, pool_pages)?, Vec::new()));
        }
        let bytes = std::fs::read(path)?;
        let (batches, valid_len) = scan_frames(&bytes);
        let padded_len = (valid_len as u64).div_ceil(PAGE_SIZE as u64) * PAGE_SIZE as u64;
        if bytes[valid_len..].iter().any(|&b| b != 0) || bytes.len() as u64 != padded_len {
            // Zero the torn tail so a later scan cannot resurrect it, and
            // restore page alignment for the page file.
            let mut clean = bytes[..valid_len].to_vec();
            clean.resize(padded_len as usize, 0);
            std::fs::write(path, &clean)?;
        }
        let store = ByteStore::open(path, pool_pages, valid_len as u64, Duration::ZERO)?;
        let next_seq = batches.last().map_or(1, |b| b.seq + 1);
        Ok((UpdateJournal { store, path: path.to_path_buf(), pool_pages, next_seq }, batches))
    }

    /// Appends a batch and forces it to stable storage. The returned
    /// sequence number is durable: after `append_batch` returns, a crash
    /// and [`UpdateJournal::recover`] will replay this batch.
    ///
    /// # Errors
    ///
    /// Propagates write and fsync failures.
    pub fn append_batch(&mut self, updates: &[DbUpdate]) -> Result<u64, StorageError> {
        let seq = self.next_seq;
        let payload = encode_payload(seq, updates);
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.store.append(&frame)?;
        self.store.flush()?;
        self.next_seq = seq + 1;
        Ok(seq)
    }

    /// Truncates the journal after its contents have been folded into a
    /// snapshot. The next appended batch continues the sequence numbering.
    ///
    /// # Errors
    ///
    /// Propagates file-system failures.
    pub fn reset(&mut self) -> Result<(), StorageError> {
        self.store = ByteStore::create(&self.path, self.pool_pages, Duration::ZERO)?;
        Ok(())
    }

    /// Sequence number the next batch will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Raises the next sequence number to `seq` (no-op when already higher).
    ///
    /// A snapshot folds the journal away ([`UpdateJournal::reset`]) but the
    /// global batch numbering must keep counting across restarts; after
    /// recovering an empty journal the caller restores the numbering from
    /// its snapshot metadata with this.
    pub fn set_next_seq(&mut self, seq: u64) {
        self.next_seq = self.next_seq.max(seq);
    }

    /// Bytes of journaled frames (excluding page padding).
    pub fn len_bytes(&self) -> u64 {
        self.store.len_bytes()
    }
}

/// Scans `bytes` for intact frames; returns the decoded batches and the
/// byte length of the valid prefix.
fn scan_frames(bytes: &[u8]) -> (Vec<JournalBatch>, usize) {
    let mut batches = Vec::new();
    let mut pos = 0usize;
    while let Some(header) = bytes.get(pos..pos + FRAME_HEADER) {
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
        if len == 0 || len > MAX_FRAME {
            break;
        }
        let Some(payload) = bytes.get(pos + FRAME_HEADER..pos + FRAME_HEADER + len as usize) else {
            break;
        };
        if crc32(payload) != crc {
            break;
        }
        let Some(batch) = decode_payload(payload) else { break };
        batches.push(batch);
        pos += FRAME_HEADER + len as usize;
    }
    (batches, pos)
}

fn encode_payload(seq: u64, updates: &[DbUpdate]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + OP_BYTES * updates.len());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(updates.len() as u32).to_le_bytes());
    for u in updates {
        out.extend_from_slice(&u.gid.to_le_bytes());
        let (tag, a, b, c): (u8, u32, u32, u32) = match u.update {
            GraphUpdate::RelabelVertex { v, label } => (0, v, label, 0),
            GraphUpdate::RelabelEdge { e, label } => (1, e, label, 0),
            GraphUpdate::AddEdge { u, v, label } => (2, u, v, label),
            GraphUpdate::AddVertex { label, attach_to, elabel } => (3, label, attach_to, elabel),
        };
        out.push(tag);
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&b.to_le_bytes());
        out.extend_from_slice(&c.to_le_bytes());
    }
    out
}

fn decode_payload(payload: &[u8]) -> Option<JournalBatch> {
    if payload.len() < 12 {
        return None;
    }
    let seq = u64::from_le_bytes(payload[..8].try_into().ok()?);
    let n = u32::from_le_bytes(payload[8..12].try_into().ok()?) as usize;
    if payload.len() != 12 + n * OP_BYTES {
        return None;
    }
    let mut updates = Vec::with_capacity(n);
    for i in 0..n {
        let op = &payload[12 + i * OP_BYTES..12 + (i + 1) * OP_BYTES];
        let gid = u32::from_le_bytes(op[..4].try_into().ok()?);
        let a = u32::from_le_bytes(op[5..9].try_into().ok()?);
        let b = u32::from_le_bytes(op[9..13].try_into().ok()?);
        let c = u32::from_le_bytes(op[13..17].try_into().ok()?);
        let update = match op[4] {
            0 => GraphUpdate::RelabelVertex { v: a, label: b },
            1 => GraphUpdate::RelabelEdge { e: a, label: b },
            2 => GraphUpdate::AddEdge { u: a, v: b, label: c },
            3 => GraphUpdate::AddVertex { label: a, attach_to: b, elabel: c },
            _ => return None,
        };
        updates.push(DbUpdate { gid, update });
    }
    Some(JournalBatch { seq, updates })
}

/// CRC-32 (IEEE 802.3, reflected), computed bitwise — no table, no deps.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch() -> Vec<DbUpdate> {
        vec![
            DbUpdate { gid: 3, update: GraphUpdate::RelabelVertex { v: 1, label: 9 } },
            DbUpdate { gid: 0, update: GraphUpdate::RelabelEdge { e: 2, label: 4 } },
            DbUpdate { gid: 7, update: GraphUpdate::AddEdge { u: 0, v: 5, label: 2 } },
            DbUpdate {
                gid: 1,
                update: GraphUpdate::AddVertex { label: 6, attach_to: 2, elabel: 1 },
            },
        ]
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_recover_round_trip() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.db");
        {
            let mut j = UpdateJournal::create(&path, 4).unwrap();
            assert_eq!(j.append_batch(&sample_batch()).unwrap(), 1);
            assert_eq!(j.append_batch(&sample_batch()[..2]).unwrap(), 2);
        }
        let (j, batches) = UpdateJournal::recover(&path, 4).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].seq, 1);
        assert_eq!(batches[0].updates, sample_batch());
        assert_eq!(batches[1].seq, 2);
        assert_eq!(batches[1].updates, sample_batch()[..2]);
        assert_eq!(j.next_seq(), 3);
    }

    #[test]
    fn recover_missing_file_is_empty() {
        let dir = tempfile::tempdir().unwrap();
        let (j, batches) = UpdateJournal::recover(&dir.path().join("none.db"), 4).unwrap();
        assert!(batches.is_empty());
        assert_eq!(j.next_seq(), 1);
    }

    #[test]
    fn torn_tail_is_ignored_and_journal_stays_usable() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.db");
        let after_first = {
            let mut j = UpdateJournal::create(&path, 4).unwrap();
            j.append_batch(&sample_batch()).unwrap();
            let after_first = j.len_bytes();
            j.append_batch(&sample_batch()).unwrap();
            let full = j.len_bytes();
            drop(j);
            // Simulate a crash mid-write of the second frame: truncate into
            // the middle of its payload, leaving an unaligned raw length —
            // recover must both drop the torn frame and restore alignment.
            let bytes = std::fs::read(&path).unwrap();
            let cut = (after_first + (full - after_first) / 2) as usize;
            std::fs::write(&path, &bytes[..cut]).unwrap();
            after_first
        };
        let (mut j, batches) = UpdateJournal::recover(&path, 4).unwrap();
        assert_eq!(batches.len(), 1, "only the fully written batch survives");
        assert_eq!(batches[0].updates, sample_batch());
        assert_eq!(j.len_bytes(), after_first);
        // The journal keeps working: the next append lands after the intact
        // prefix and recovers cleanly again.
        assert_eq!(j.append_batch(&sample_batch()[..1]).unwrap(), 2);
        drop(j);
        let (_, batches) = UpdateJournal::recover(&path, 4).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[1].seq, 2);
        assert_eq!(batches[1].updates, sample_batch()[..1]);
    }

    #[test]
    fn corrupt_crc_stops_the_scan() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.db");
        {
            let mut j = UpdateJournal::create(&path, 4).unwrap();
            j.append_batch(&sample_batch()).unwrap();
            j.append_batch(&sample_batch()).unwrap();
        }
        // Flip a payload byte of the SECOND frame.
        let first_len = {
            let mut bytes = std::fs::read(&path).unwrap();
            let first = FRAME_HEADER + 12 + OP_BYTES * 4;
            bytes[first + FRAME_HEADER + 3] ^= 0xFF;
            std::fs::write(&path, &bytes).unwrap();
            first as u64
        };
        let (j, batches) = UpdateJournal::recover(&path, 4).unwrap();
        assert_eq!(batches.len(), 1, "corrupt second frame dropped");
        assert_eq!(j.len_bytes(), first_len);
    }

    #[test]
    fn reset_truncates_but_keeps_sequence() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.db");
        let mut j = UpdateJournal::create(&path, 4).unwrap();
        j.append_batch(&sample_batch()).unwrap();
        j.reset().unwrap();
        assert_eq!(j.len_bytes(), 0);
        assert_eq!(j.append_batch(&sample_batch()).unwrap(), 2, "numbering continues");
        drop(j);
        let (_, batches) = UpdateJournal::recover(&path, 4).unwrap();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].seq, 2);
    }

    #[test]
    fn empty_batch_is_journalable() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.db");
        let mut j = UpdateJournal::create(&path, 4).unwrap();
        j.append_batch(&[]).unwrap();
        drop(j);
        let (_, batches) = UpdateJournal::recover(&path, 4).unwrap();
        assert_eq!(batches.len(), 1);
        assert!(batches[0].updates.is_empty());
    }
}
