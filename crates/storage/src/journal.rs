//! Write-ahead journal for database update batches.
//!
//! The serving daemon acknowledges an `update` request only after the batch
//! has reached stable storage. The journal provides that guarantee on top of
//! [`ByteStore`]: each batch is framed as
//!
//! ```text
//! [len: u32 LE] [crc32: u32 LE] [payload: len bytes]
//! payload = [seq: u64 LE] [expiry: u64 LE] [n: u32 LE] [n × op]
//! op      = [gid: u32 LE] [tag: u8] [a: u32 LE] [b: u32 LE] [c: u32 LE]
//! ```
//!
//! `expiry` is `0` for an ordinary batch; a non-zero value marks the frame
//! as the synthesized inverse batch that expires the window whose sequence
//! number it names (window sequence numbers are 1-based, so `0` is never a
//! valid window). Journaling expiry as a normal frame keeps replay
//! deterministic: recovery replays exactly the acked prefix, expiries
//! included, and can never double-expire a window.
//!
//! Frames carry a CRC-32 (IEEE) over the payload. `append_batch` flushes and
//! fsyncs before returning, so a returned sequence number means the batch
//! survives a crash. [`UpdateJournal::recover`] rebuilds the acknowledged
//! prefix by scanning frames and stops at the first zero/oversized length or
//! CRC mismatch — a torn tail from a crash mid-write is zeroed and ignored,
//! never replayed.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use graphmine_graph::{DbUpdate, GraphUpdate};

use crate::{ByteStore, StorageError, PAGE_SIZE};

/// Frame header bytes: `len` + `crc32`.
const FRAME_HEADER: usize = 8;
/// Bytes per serialized op: gid + tag + three `u32` arguments.
const OP_BYTES: usize = 17;
/// Upper bound on a sane frame payload; larger lengths are treated as a
/// torn/corrupt tail rather than attempted.
const MAX_FRAME: u32 = 64 << 20;

/// One recovered (or to-be-written) journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalBatch {
    /// Monotonic batch sequence number (1-based).
    pub seq: u64,
    /// The updates of the batch, in application order.
    pub updates: Vec<DbUpdate>,
    /// `Some(w)` when this frame is the synthesized inverse batch expiring
    /// window `w` from the sliding window; `None` for an ordinary batch.
    pub expiry: Option<u64>,
}

/// An fsync-before-ack write-ahead log of [`DbUpdate`] batches.
pub struct UpdateJournal {
    store: ByteStore,
    path: PathBuf,
    pool_pages: usize,
    next_seq: u64,
}

impl UpdateJournal {
    /// Creates an empty journal at `path` (truncating any existing file).
    ///
    /// # Errors
    ///
    /// Propagates file-system failures.
    pub fn create(path: &Path, pool_pages: usize) -> Result<Self, StorageError> {
        let store = ByteStore::create(path, pool_pages, Duration::ZERO)?;
        Ok(UpdateJournal { store, path: path.to_path_buf(), pool_pages, next_seq: 1 })
    }

    /// Opens the journal at `path`, replaying every intact frame. Returns
    /// the journal (positioned after the last intact frame) and the
    /// recovered batches in order. A torn tail — a partially written frame
    /// left by a crash during `append_batch` — is zeroed and ignored. A
    /// missing file yields an empty journal.
    ///
    /// # Errors
    ///
    /// Propagates file-system failures.
    pub fn recover(
        path: &Path,
        pool_pages: usize,
    ) -> Result<(Self, Vec<JournalBatch>), StorageError> {
        if !path.exists() {
            return Ok((Self::create(path, pool_pages)?, Vec::new()));
        }
        let bytes = std::fs::read(path)?;
        let (batches, valid_len) = scan_frames(&bytes);
        let padded_len = (valid_len as u64).div_ceil(PAGE_SIZE as u64) * PAGE_SIZE as u64;
        if bytes[valid_len..].iter().any(|&b| b != 0) || bytes.len() as u64 != padded_len {
            // Zero the torn tail so a later scan cannot resurrect it, and
            // restore page alignment for the page file.
            let mut clean = bytes[..valid_len].to_vec();
            clean.resize(padded_len as usize, 0);
            std::fs::write(path, &clean)?;
        }
        let store = ByteStore::open(path, pool_pages, valid_len as u64, Duration::ZERO)?;
        let next_seq = batches.last().map_or(1, |b| b.seq + 1);
        Ok((UpdateJournal { store, path: path.to_path_buf(), pool_pages, next_seq }, batches))
    }

    /// Appends a batch and forces it to stable storage. The returned
    /// sequence number is durable: after `append_batch` returns, a crash
    /// and [`UpdateJournal::recover`] will replay this batch.
    ///
    /// # Errors
    ///
    /// Propagates write and fsync failures.
    pub fn append_batch(&mut self, updates: &[DbUpdate]) -> Result<u64, StorageError> {
        let seq = self.append_unsynced(updates, None)?;
        self.sync()?;
        Ok(seq)
    }

    /// Appends a batch frame *without* forcing it to disk. The returned
    /// sequence number is **not** durable until a following
    /// [`UpdateJournal::sync`] — the group-commit building block: many
    /// frames appended, one shared fsync barrier. A crash before the
    /// barrier leaves a torn tail that recovery drops. A `Some(w)` expiry
    /// marks the frame as the inverse batch expiring window `w`.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn append_unsynced(
        &mut self,
        updates: &[DbUpdate],
        expiry: Option<u64>,
    ) -> Result<u64, StorageError> {
        let seq = self.next_seq;
        let payload = encode_payload(seq, updates, expiry);
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.store.append(&frame)?;
        self.next_seq = seq + 1;
        Ok(seq)
    }

    /// The fsync barrier: forces every frame appended so far to stable
    /// storage. After `sync` returns, all sequence numbers handed out by
    /// [`UpdateJournal::append_unsynced`] are durable.
    ///
    /// # Errors
    ///
    /// Propagates write and fsync failures.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.store.flush()
    }

    /// Truncates the journal after its contents have been folded into a
    /// snapshot. The next appended batch continues the sequence numbering.
    ///
    /// # Errors
    ///
    /// Propagates file-system failures.
    pub fn reset(&mut self) -> Result<(), StorageError> {
        self.store = ByteStore::create(&self.path, self.pool_pages, Duration::ZERO)?;
        Ok(())
    }

    /// Sequence number the next batch will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Raises the next sequence number to `seq` (no-op when already higher).
    ///
    /// A snapshot folds the journal away ([`UpdateJournal::reset`]) but the
    /// global batch numbering must keep counting across restarts; after
    /// recovering an empty journal the caller restores the numbering from
    /// its snapshot metadata with this.
    pub fn set_next_seq(&mut self, seq: u64) {
        self.next_seq = self.next_seq.max(seq);
    }

    /// Bytes of journaled frames (excluding page padding).
    pub fn len_bytes(&self) -> u64 {
        self.store.len_bytes()
    }
}

/// Lifetime totals of a [`GroupCommitJournal`]'s committer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupStats {
    /// Fsync barriers executed (each covers one commit group).
    pub groups: u64,
    /// Frames made durable across all groups.
    pub frames: u64,
}

/// State shared between submitters and the committer thread.
struct GroupState {
    /// The journal, absent while the committer holds it for an
    /// append+fsync round (so the next group forms during the barrier).
    journal: Option<UpdateJournal>,
    /// Frames assigned a sequence number but not yet durable
    /// (`(seq, updates, expiry)`).
    pending: VecDeque<(u64, Vec<DbUpdate>, Option<u64>)>,
    /// Mirror of the journal's next sequence number, valid even while the
    /// journal is out with the committer.
    next_seq: u64,
    /// Highest sequence number known durable.
    durable_seq: u64,
    /// Sticky first commit failure: once an append or fsync fails the
    /// acked-prefix invariant can no longer be promised, so every waiter
    /// and every later submission gets this error.
    failed: Option<String>,
    stop: bool,
    stats: GroupStats,
}

struct GroupShared {
    state: Mutex<GroupState>,
    /// Wakes the committer: frames pending or stop requested.
    work: Condvar,
    /// Wakes waiters: `durable_seq` advanced, journal returned to its
    /// slot, or the committer failed.
    done: Condvar,
}

/// A group-committing front end over [`UpdateJournal`].
///
/// Concurrently submitted frames are drained by a dedicated committer
/// thread into one append run followed by a **single** fsync barrier;
/// every waiter is acknowledged after the shared barrier. The crash
/// contract is unchanged from `append_batch`: a sequence number returned
/// by [`GroupCommitJournal::submit`] is durable, and recovery replays
/// exactly a clean prefix of the submitted order (frames are written in
/// sequence order, so no later frame can be durable without its
/// predecessors).
pub struct GroupCommitJournal {
    shared: Arc<GroupShared>,
    committer: Option<JoinHandle<()>>,
}

impl GroupCommitJournal {
    /// Wraps `journal` and spawns the committer thread.
    pub fn new(journal: UpdateJournal) -> Self {
        let next_seq = journal.next_seq();
        let shared = Arc::new(GroupShared {
            state: Mutex::new(GroupState {
                journal: Some(journal),
                pending: VecDeque::new(),
                next_seq,
                durable_seq: next_seq - 1,
                failed: None,
                stop: false,
                stats: GroupStats::default(),
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let committer = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("wal-committer".to_string())
                .spawn(move || committer_loop(&shared))
                .expect("spawn wal-committer")
        };
        GroupCommitJournal { shared, committer: Some(committer) }
    }

    /// Assigns the next sequence number to `updates` and queues the frame
    /// for the committer. Returns immediately — the sequence number is
    /// **not** durable until [`GroupCommitJournal::wait_durable`] returns
    /// for it.
    ///
    /// # Errors
    ///
    /// Fails when a previous commit round failed (sticky).
    pub fn enqueue(&self, updates: &[DbUpdate]) -> Result<u64, StorageError> {
        self.enqueue_frame(updates, None)
    }

    /// Like [`GroupCommitJournal::enqueue`], but marks the frame as the
    /// synthesized inverse batch expiring window `window` — the marker
    /// travels through the WAL so replay expires exactly once.
    ///
    /// # Errors
    ///
    /// Fails when a previous commit round failed (sticky).
    pub fn enqueue_expiry(&self, updates: &[DbUpdate], window: u64) -> Result<u64, StorageError> {
        self.enqueue_frame(updates, Some(window))
    }

    fn enqueue_frame(
        &self,
        updates: &[DbUpdate],
        expiry: Option<u64>,
    ) -> Result<u64, StorageError> {
        let mut st = self.shared.state.lock().expect("journal state poisoned");
        if let Some(msg) = &st.failed {
            return Err(commit_failed(msg));
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.pending.push_back((seq, updates.to_vec(), expiry));
        drop(st);
        self.shared.work.notify_one();
        Ok(seq)
    }

    /// Blocks until `seq` is durable (its group's fsync barrier passed).
    ///
    /// # Errors
    ///
    /// Fails when the committer failed before making `seq` durable.
    pub fn wait_durable(&self, seq: u64) -> Result<(), StorageError> {
        let mut st = self.shared.state.lock().expect("journal state poisoned");
        loop {
            if st.durable_seq >= seq {
                return Ok(());
            }
            if let Some(msg) = &st.failed {
                return Err(commit_failed(msg));
            }
            st = self.shared.done.wait(st).expect("journal state poisoned");
        }
    }

    /// Submits a frame and blocks until it is durable — the group-commit
    /// equivalent of [`UpdateJournal::append_batch`]. The returned
    /// sequence number survives a crash.
    ///
    /// # Errors
    ///
    /// Propagates enqueue and commit failures.
    pub fn submit(&self, updates: &[DbUpdate]) -> Result<u64, StorageError> {
        let seq = self.enqueue(updates)?;
        self.wait_durable(seq)?;
        Ok(seq)
    }

    /// Highest sequence number known durable.
    pub fn durable_seq(&self) -> u64 {
        self.shared.state.lock().expect("journal state poisoned").durable_seq
    }

    /// Sequence number the next submitted frame will receive.
    pub fn next_seq(&self) -> u64 {
        self.shared.state.lock().expect("journal state poisoned").next_seq
    }

    /// Lifetime group-commit totals (barriers executed, frames grouped).
    pub fn stats(&self) -> GroupStats {
        self.shared.state.lock().expect("journal state poisoned").stats
    }

    /// Runs `f` with exclusive access to the quiesced inner journal:
    /// waits until every pending frame is durable and the committer has
    /// returned the journal to its slot. Used for maintenance that must
    /// not race a commit round (snapshot-time [`UpdateJournal::reset`],
    /// [`UpdateJournal::set_next_seq`]); the sequence mirror is re-read
    /// from the journal afterwards.
    ///
    /// # Errors
    ///
    /// Fails when the committer failed (the journal may hold a torn
    /// group; maintenance on it would be unsound).
    pub fn with_journal<R>(
        &self,
        f: impl FnOnce(&mut UpdateJournal) -> R,
    ) -> Result<R, StorageError> {
        let mut st = self.shared.state.lock().expect("journal state poisoned");
        loop {
            if let Some(msg) = &st.failed {
                return Err(commit_failed(msg));
            }
            if st.pending.is_empty() && st.journal.is_some() {
                break;
            }
            st = self.shared.done.wait(st).expect("journal state poisoned");
        }
        let journal = st.journal.as_mut().expect("journal in slot");
        let out = f(journal);
        st.next_seq = journal.next_seq();
        st.durable_seq = st.next_seq - 1;
        Ok(out)
    }

    /// Stops the committer (after it drains every pending frame) and
    /// returns the inner journal.
    ///
    /// # Errors
    ///
    /// Propagates a commit failure; the journal is lost with it.
    pub fn close(mut self) -> Result<UpdateJournal, StorageError> {
        self.begin_stop();
        if let Some(h) = self.committer.take() {
            let _ = h.join();
        }
        let mut st = self.shared.state.lock().expect("journal state poisoned");
        if let Some(msg) = &st.failed {
            return Err(commit_failed(msg));
        }
        Ok(st.journal.take().expect("journal in slot after committer exit"))
    }

    fn begin_stop(&self) {
        let mut st = self.shared.state.lock().expect("journal state poisoned");
        st.stop = true;
        drop(st);
        self.shared.work.notify_one();
    }
}

impl Drop for GroupCommitJournal {
    fn drop(&mut self) {
        self.begin_stop();
        if let Some(h) = self.committer.take() {
            let _ = h.join();
        }
    }
}

fn commit_failed(msg: &str) -> StorageError {
    StorageError::Io(std::io::Error::other(format!("group commit failed: {msg}")))
}

/// The committer: drains all pending frames into one append run and one
/// fsync. The state lock is **released** during the append+fsync — the
/// journal travels out of its slot — so the next group forms while the
/// barrier is in flight; that overlap is where the fsync amortization
/// comes from.
fn committer_loop(shared: &GroupShared) {
    loop {
        let (mut journal, group) = {
            let mut st = shared.state.lock().expect("journal state poisoned");
            while st.pending.is_empty() && !st.stop {
                st = shared.work.wait(st).expect("journal state poisoned");
            }
            if st.pending.is_empty() {
                // Stop with nothing left to flush.
                shared.done.notify_all();
                return;
            }
            if st.failed.is_some() {
                // Poisoned: drop the group, tell any waiters.
                st.pending.clear();
                shared.done.notify_all();
                continue;
            }
            let group: Vec<(u64, Vec<DbUpdate>, Option<u64>)> = st.pending.drain(..).collect();
            let journal = st.journal.take().expect("journal in slot");
            (journal, group)
        };

        let mut result = Ok(());
        for (seq, updates, expiry) in &group {
            match journal.append_unsynced(updates, *expiry) {
                Ok(got) => debug_assert_eq!(got, *seq, "frames written in submit order"),
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        if result.is_ok() {
            result = journal.sync();
        }

        let mut st = shared.state.lock().expect("journal state poisoned");
        st.journal = Some(journal);
        match result {
            Ok(()) => {
                st.durable_seq = group.last().expect("non-empty group").0;
                st.stats.groups += 1;
                st.stats.frames += group.len() as u64;
            }
            Err(e) => st.failed = Some(e.to_string()),
        }
        drop(st);
        shared.done.notify_all();
    }
}

/// Scans `bytes` for intact frames; returns the decoded batches and the
/// byte length of the valid prefix.
fn scan_frames(bytes: &[u8]) -> (Vec<JournalBatch>, usize) {
    let mut batches = Vec::new();
    let mut pos = 0usize;
    while let Some(header) = bytes.get(pos..pos + FRAME_HEADER) {
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
        if len == 0 || len > MAX_FRAME {
            break;
        }
        let Some(payload) = bytes.get(pos + FRAME_HEADER..pos + FRAME_HEADER + len as usize) else {
            break;
        };
        if crc32(payload) != crc {
            break;
        }
        let Some(batch) = decode_payload(payload) else { break };
        batches.push(batch);
        pos += FRAME_HEADER + len as usize;
    }
    (batches, pos)
}

/// Payload prefix bytes: `seq` + `expiry` + `n`.
const PAYLOAD_PREFIX: usize = 20;

fn encode_payload(seq: u64, updates: &[DbUpdate], expiry: Option<u64>) -> Vec<u8> {
    let mut out = Vec::with_capacity(PAYLOAD_PREFIX + OP_BYTES * updates.len());
    out.extend_from_slice(&seq.to_le_bytes());
    // Window sequence numbers are 1-based, so 0 encodes "no expiry".
    out.extend_from_slice(&expiry.unwrap_or(0).to_le_bytes());
    out.extend_from_slice(&(updates.len() as u32).to_le_bytes());
    for u in updates {
        out.extend_from_slice(&u.gid.to_le_bytes());
        let (tag, a, b, c): (u8, u32, u32, u32) = match u.update {
            GraphUpdate::RelabelVertex { v, label } => (0, v, label, 0),
            GraphUpdate::RelabelEdge { e, label } => (1, e, label, 0),
            GraphUpdate::AddEdge { u, v, label } => (2, u, v, label),
            GraphUpdate::AddVertex { label, attach_to, elabel } => (3, label, attach_to, elabel),
            GraphUpdate::DeleteEdge { e } => (4, e, 0, 0),
            GraphUpdate::DeleteVertex { v } => (5, v, 0, 0),
        };
        out.push(tag);
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&b.to_le_bytes());
        out.extend_from_slice(&c.to_le_bytes());
    }
    out
}

fn decode_payload(payload: &[u8]) -> Option<JournalBatch> {
    if payload.len() < PAYLOAD_PREFIX {
        return None;
    }
    let seq = u64::from_le_bytes(payload[..8].try_into().ok()?);
    let expiry = match u64::from_le_bytes(payload[8..16].try_into().ok()?) {
        0 => None,
        w => Some(w),
    };
    let n = u32::from_le_bytes(payload[16..20].try_into().ok()?) as usize;
    if payload.len() != PAYLOAD_PREFIX + n * OP_BYTES {
        return None;
    }
    let mut updates = Vec::with_capacity(n);
    for i in 0..n {
        let op = &payload[PAYLOAD_PREFIX + i * OP_BYTES..PAYLOAD_PREFIX + (i + 1) * OP_BYTES];
        let gid = u32::from_le_bytes(op[..4].try_into().ok()?);
        let a = u32::from_le_bytes(op[5..9].try_into().ok()?);
        let b = u32::from_le_bytes(op[9..13].try_into().ok()?);
        let c = u32::from_le_bytes(op[13..17].try_into().ok()?);
        let update = match op[4] {
            0 => GraphUpdate::RelabelVertex { v: a, label: b },
            1 => GraphUpdate::RelabelEdge { e: a, label: b },
            2 => GraphUpdate::AddEdge { u: a, v: b, label: c },
            3 => GraphUpdate::AddVertex { label: a, attach_to: b, elabel: c },
            4 => GraphUpdate::DeleteEdge { e: a },
            5 => GraphUpdate::DeleteVertex { v: a },
            _ => return None,
        };
        updates.push(DbUpdate { gid, update });
    }
    Some(JournalBatch { seq, updates, expiry })
}

/// CRC-32 (IEEE 802.3, reflected), computed bitwise — no table, no deps.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch() -> Vec<DbUpdate> {
        vec![
            DbUpdate { gid: 3, update: GraphUpdate::RelabelVertex { v: 1, label: 9 } },
            DbUpdate { gid: 0, update: GraphUpdate::RelabelEdge { e: 2, label: 4 } },
            DbUpdate { gid: 7, update: GraphUpdate::AddEdge { u: 0, v: 5, label: 2 } },
            DbUpdate {
                gid: 1,
                update: GraphUpdate::AddVertex { label: 6, attach_to: 2, elabel: 1 },
            },
            DbUpdate { gid: 2, update: GraphUpdate::DeleteEdge { e: 3 } },
            DbUpdate { gid: 4, update: GraphUpdate::DeleteVertex { v: 6 } },
        ]
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_recover_round_trip() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.db");
        {
            let mut j = UpdateJournal::create(&path, 4).unwrap();
            assert_eq!(j.append_batch(&sample_batch()).unwrap(), 1);
            assert_eq!(j.append_batch(&sample_batch()[..2]).unwrap(), 2);
        }
        let (j, batches) = UpdateJournal::recover(&path, 4).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].seq, 1);
        assert_eq!(batches[0].updates, sample_batch());
        assert_eq!(batches[1].seq, 2);
        assert_eq!(batches[1].updates, sample_batch()[..2]);
        assert_eq!(j.next_seq(), 3);
    }

    #[test]
    fn recover_missing_file_is_empty() {
        let dir = tempfile::tempdir().unwrap();
        let (j, batches) = UpdateJournal::recover(&dir.path().join("none.db"), 4).unwrap();
        assert!(batches.is_empty());
        assert_eq!(j.next_seq(), 1);
    }

    #[test]
    fn torn_tail_is_ignored_and_journal_stays_usable() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.db");
        let after_first = {
            let mut j = UpdateJournal::create(&path, 4).unwrap();
            j.append_batch(&sample_batch()).unwrap();
            let after_first = j.len_bytes();
            j.append_batch(&sample_batch()).unwrap();
            let full = j.len_bytes();
            drop(j);
            // Simulate a crash mid-write of the second frame: truncate into
            // the middle of its payload, leaving an unaligned raw length —
            // recover must both drop the torn frame and restore alignment.
            let bytes = std::fs::read(&path).unwrap();
            let cut = (after_first + (full - after_first) / 2) as usize;
            std::fs::write(&path, &bytes[..cut]).unwrap();
            after_first
        };
        let (mut j, batches) = UpdateJournal::recover(&path, 4).unwrap();
        assert_eq!(batches.len(), 1, "only the fully written batch survives");
        assert_eq!(batches[0].updates, sample_batch());
        assert_eq!(j.len_bytes(), after_first);
        // The journal keeps working: the next append lands after the intact
        // prefix and recovers cleanly again.
        assert_eq!(j.append_batch(&sample_batch()[..1]).unwrap(), 2);
        drop(j);
        let (_, batches) = UpdateJournal::recover(&path, 4).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[1].seq, 2);
        assert_eq!(batches[1].updates, sample_batch()[..1]);
    }

    #[test]
    fn corrupt_crc_stops_the_scan() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.db");
        {
            let mut j = UpdateJournal::create(&path, 4).unwrap();
            j.append_batch(&sample_batch()).unwrap();
            j.append_batch(&sample_batch()).unwrap();
        }
        // Flip a payload byte of the SECOND frame.
        let first_len = {
            let mut bytes = std::fs::read(&path).unwrap();
            let first = FRAME_HEADER + PAYLOAD_PREFIX + OP_BYTES * sample_batch().len();
            bytes[first + FRAME_HEADER + 3] ^= 0xFF;
            std::fs::write(&path, &bytes).unwrap();
            first as u64
        };
        let (j, batches) = UpdateJournal::recover(&path, 4).unwrap();
        assert_eq!(batches.len(), 1, "corrupt second frame dropped");
        assert_eq!(j.len_bytes(), first_len);
    }

    #[test]
    fn reset_truncates_but_keeps_sequence() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.db");
        let mut j = UpdateJournal::create(&path, 4).unwrap();
        j.append_batch(&sample_batch()).unwrap();
        j.reset().unwrap();
        assert_eq!(j.len_bytes(), 0);
        assert_eq!(j.append_batch(&sample_batch()).unwrap(), 2, "numbering continues");
        drop(j);
        let (_, batches) = UpdateJournal::recover(&path, 4).unwrap();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].seq, 2);
    }

    #[test]
    fn unsynced_appends_are_made_durable_by_one_sync() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.db");
        let mut j = UpdateJournal::create(&path, 4).unwrap();
        assert_eq!(j.append_unsynced(&sample_batch(), None).unwrap(), 1);
        assert_eq!(j.append_unsynced(&sample_batch()[..1], None).unwrap(), 2);
        j.sync().unwrap();
        drop(j);
        let (_, batches) = UpdateJournal::recover(&path, 4).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[1].seq, 2);
    }

    #[test]
    fn group_commit_acks_concurrent_submitters() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.db");
        let gj =
            std::sync::Arc::new(GroupCommitJournal::new(UpdateJournal::create(&path, 4).unwrap()));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let gj = std::sync::Arc::clone(&gj);
            handles.push(std::thread::spawn(move || {
                (0..5).map(|_| gj.submit(&sample_batch()[..1]).unwrap()).collect::<Vec<u64>>()
            }));
        }
        let mut seqs: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (1..=20).collect::<Vec<u64>>());
        let stats = gj.stats();
        assert_eq!(stats.frames, 20);
        assert!(stats.groups >= 1 && stats.groups <= 20);
        assert_eq!(gj.durable_seq(), 20);
        let journal = std::sync::Arc::try_unwrap(gj).ok().unwrap().close().unwrap();
        drop(journal);
        let (_, batches) = UpdateJournal::recover(&path, 4).unwrap();
        assert_eq!(batches.len(), 20, "every acked frame replays");
        for (i, b) in batches.iter().enumerate() {
            assert_eq!(b.seq, i as u64 + 1, "clean contiguous prefix");
        }
    }

    #[test]
    fn group_commit_with_journal_quiesces_for_maintenance() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.db");
        let gj = GroupCommitJournal::new(UpdateJournal::create(&path, 4).unwrap());
        gj.submit(&sample_batch()).unwrap();
        gj.submit(&sample_batch()).unwrap();
        // Snapshot-style maintenance: truncate but keep numbering.
        gj.with_journal(|j| j.reset()).unwrap().unwrap();
        assert_eq!(gj.next_seq(), 3, "numbering continues across reset");
        assert_eq!(gj.submit(&sample_batch()[..2]).unwrap(), 3);
        drop(gj);
        let (_, batches) = UpdateJournal::recover(&path, 4).unwrap();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].seq, 3);
    }

    #[test]
    fn group_commit_drop_flushes_pending_frames() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.db");
        let gj = GroupCommitJournal::new(UpdateJournal::create(&path, 4).unwrap());
        // Enqueue without waiting: Drop must still drain the group.
        gj.enqueue(&sample_batch()).unwrap();
        gj.enqueue(&sample_batch()[..1]).unwrap();
        drop(gj);
        let (_, batches) = UpdateJournal::recover(&path, 4).unwrap();
        assert_eq!(batches.len(), 2);
    }

    #[test]
    fn empty_batch_is_journalable() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.db");
        let mut j = UpdateJournal::create(&path, 4).unwrap();
        j.append_batch(&[]).unwrap();
        drop(j);
        let (_, batches) = UpdateJournal::recover(&path, 4).unwrap();
        assert_eq!(batches.len(), 1);
        assert!(batches[0].updates.is_empty());
        assert_eq!(batches[0].expiry, None);
    }

    /// The expiry marker survives the round trip through the group-commit
    /// path and recovery — an expiry frame replays as exactly one expiry.
    #[test]
    fn expiry_marker_round_trips() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.db");
        let gj = GroupCommitJournal::new(UpdateJournal::create(&path, 4).unwrap());
        gj.submit(&sample_batch()).unwrap();
        let inverse = vec![DbUpdate { gid: 2, update: GraphUpdate::DeleteEdge { e: 0 } }];
        let seq = gj.enqueue_expiry(&inverse, 1).unwrap();
        gj.wait_durable(seq).unwrap();
        drop(gj);
        let (_, batches) = UpdateJournal::recover(&path, 4).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].expiry, None);
        assert_eq!(batches[1].seq, 2);
        assert_eq!(batches[1].expiry, Some(1), "expiry frame names the expired window");
        assert_eq!(batches[1].updates, inverse);
    }
}
