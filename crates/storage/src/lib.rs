//! Disk substrate for the ADIMINE baseline.
//!
//! The authors of the paper ran ADIMINE — a miner for *large, disk-based*
//! graph databases — on a 2.5 GB RAM / 73 GB disk machine. This crate
//! rebuilds the storage layer that role needs:
//!
//! * [`PageFile`] — a page-granular file store (4 KiB pages);
//! * [`BufferPool`] — an LRU buffer pool over a page file with pin-free
//!   closure access, dirty-page write-back, and hit/miss/IO accounting, so
//!   experiments can report both wall-clock time and I/O volume;
//! * [`GraphStore`] — a graph-database serialization format over pages,
//!   with per-graph random access (the access pattern of index-backed
//!   mining), full scans, and reopen-from-disk for snapshot recovery;
//! * [`UpdateJournal`] — an fsync-before-ack write-ahead log of update
//!   batches with CRC-framed records and torn-tail recovery, the
//!   durability substrate of the serving daemon;
//! * [`GroupCommitJournal`] — a group-committing front end over the
//!   journal: a committer thread batches concurrently submitted frames
//!   into one fsync barrier and acks every waiter after it, amortizing
//!   the fsync under write load without weakening the crash contract.
//!
//! Everything returns [`StorageError`]; I/O failures are surfaced, never
//! panicked on.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod bytestore;
mod error;
mod file;
mod graphstore;
mod journal;
mod pool;

pub use bytestore::{ByteStore, RecordId};
pub use error::StorageError;
pub use file::{PageFile, PageId, PAGE_SIZE};
pub use graphstore::GraphStore;
pub use journal::{GroupCommitJournal, GroupStats, JournalBatch, UpdateJournal};
pub use pool::{BufferPool, PoolStats};
