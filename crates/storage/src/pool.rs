//! An LRU buffer pool over a [`PageFile`].

use std::collections::VecDeque;

use parking_lot::Mutex;
use rustc_hash::FxHashMap;

use crate::{PageFile, PageId, StorageError, PAGE_SIZE};

/// I/O accounting for experiment reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests served from the pool.
    pub hits: u64,
    /// Page requests that had to read from disk.
    pub misses: u64,
    /// Pages read from disk.
    pub disk_reads: u64,
    /// Pages written to disk (evictions of dirty pages + flushes).
    pub disk_writes: u64,
}

struct Frame {
    data: Box<[u8; PAGE_SIZE]>,
    dirty: bool,
}

struct PoolInner {
    file: PageFile,
    frames: FxHashMap<PageId, Frame>,
    /// LRU order, least recent at the front. May contain stale entries for
    /// pages that were re-touched (filtered on eviction).
    lru: VecDeque<PageId>,
    capacity: usize,
    stats: PoolStats,
}

/// A single-writer LRU buffer pool. Access is closure-scoped
/// ([`BufferPool::with_page`] / [`BufferPool::with_page_mut`]) so pages are
/// never pinned across calls, which keeps eviction trivially safe.
pub struct BufferPool {
    inner: Mutex<PoolInner>,
}

impl BufferPool {
    /// Wraps `file` with a pool of `capacity` pages (at least 1).
    pub fn new(file: PageFile, capacity: usize) -> Self {
        BufferPool {
            inner: Mutex::new(PoolInner {
                file,
                frames: FxHashMap::default(),
                lru: VecDeque::new(),
                capacity: capacity.max(1),
                stats: PoolStats::default(),
            }),
        }
    }

    /// Allocates a fresh page (zeroed, resident, clean).
    ///
    /// # Errors
    ///
    /// Propagates allocation and eviction I/O failures.
    pub fn allocate(&self) -> Result<PageId, StorageError> {
        let mut inner = self.inner.lock();
        let pid = inner.file.allocate()?;
        inner.evict_to(|cap| cap - 1)?;
        inner.frames.insert(pid, Frame { data: Box::new([0; PAGE_SIZE]), dirty: false });
        inner.lru.push_back(pid);
        Ok(pid)
    }

    /// Runs `f` with read access to page `pid`.
    ///
    /// # Errors
    ///
    /// Propagates faults from reading the page in.
    pub fn with_page<R>(
        &self,
        pid: PageId,
        f: impl FnOnce(&[u8; PAGE_SIZE]) -> R,
    ) -> Result<R, StorageError> {
        let mut inner = self.inner.lock();
        inner.fault_in(pid)?;
        let frame = inner.frames.get(&pid).expect("faulted in");
        Ok(f(&frame.data))
    }

    /// Runs `f` with write access to page `pid`, marking it dirty.
    ///
    /// # Errors
    ///
    /// Propagates faults from reading the page in.
    pub fn with_page_mut<R>(
        &self,
        pid: PageId,
        f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R,
    ) -> Result<R, StorageError> {
        let mut inner = self.inner.lock();
        inner.fault_in(pid)?;
        let frame = inner.frames.get_mut(&pid).expect("faulted in");
        frame.dirty = true;
        Ok(f(&mut frame.data))
    }

    /// Writes all dirty pages back and syncs the file.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn flush(&self) -> Result<(), StorageError> {
        let mut inner = self.inner.lock();
        let dirty: Vec<PageId> =
            inner.frames.iter().filter(|(_, fr)| fr.dirty).map(|(&pid, _)| pid).collect();
        for pid in dirty {
            let frame = inner.frames.get(&pid).expect("listed above");
            let data = *frame.data;
            inner.file.write_page(pid, &data)?;
            inner.stats.disk_writes += 1;
            inner.frames.get_mut(&pid).expect("listed above").dirty = false;
        }
        inner.file.sync()?;
        Ok(())
    }

    /// Snapshot of the I/O counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats
    }

    /// Resets the I/O counters (per-experiment accounting).
    pub fn reset_stats(&self) {
        self.inner.lock().stats = PoolStats::default();
    }

    /// Number of allocated pages in the backing file.
    pub fn page_count(&self) -> u64 {
        self.inner.lock().file.page_count()
    }
}

impl PoolInner {
    fn fault_in(&mut self, pid: PageId) -> Result<(), StorageError> {
        if self.frames.contains_key(&pid) {
            self.stats.hits += 1;
            self.lru.push_back(pid); // stale duplicates filtered on evict
            if self.lru.len() > self.capacity * 8 + 16 {
                self.compact_lru();
            }
            return Ok(());
        }
        self.stats.misses += 1;
        self.evict_to(|cap| cap - 1)?;
        let mut data = Box::new([0u8; PAGE_SIZE]);
        self.file.read_page(pid, &mut data)?;
        self.stats.disk_reads += 1;
        self.frames.insert(pid, Frame { data, dirty: false });
        self.lru.push_back(pid);
        Ok(())
    }

    /// Drops stale duplicates from the LRU queue, keeping only the most
    /// recent entry per page.
    fn compact_lru(&mut self) {
        let mut seen = rustc_hash::FxHashSet::default();
        let mut kept: VecDeque<PageId> = VecDeque::with_capacity(self.frames.len());
        for &pid in self.lru.iter().rev() {
            if seen.insert(pid) {
                kept.push_front(pid);
            }
        }
        self.lru = kept;
    }

    /// Evicts least-recently-used frames until at most `target(capacity)`
    /// remain resident.
    fn evict_to(&mut self, target: impl Fn(usize) -> usize) -> Result<(), StorageError> {
        let want = target(self.capacity);
        while self.frames.len() > want {
            let Some(pid) = self.lru.pop_front() else { break };
            // Stale LRU entry: the page was touched again later.
            if self.lru.contains(&pid) {
                continue;
            }
            if let Some(frame) = self.frames.remove(&pid) {
                if frame.dirty {
                    self.file.write_page(pid, &frame.data)?;
                    self.stats.disk_writes += 1;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(capacity: usize) -> BufferPool {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("pool.db");
        let file = PageFile::create(&path).unwrap();
        // Leak the tempdir so the file outlives the test body.
        std::mem::forget(dir);
        BufferPool::new(file, capacity)
    }

    #[test]
    fn read_your_writes_through_the_pool() {
        let p = pool(4);
        let a = p.allocate().unwrap();
        p.with_page_mut(a, |pg| pg[10] = 42).unwrap();
        let v = p.with_page(a, |pg| pg[10]).unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let p = pool(2);
        let pids: Vec<PageId> = (0..5).map(|_| p.allocate().unwrap()).collect();
        for (i, &pid) in pids.iter().enumerate() {
            p.with_page_mut(pid, |pg| pg[0] = i as u8 + 1).unwrap();
        }
        // Early pages were evicted; reading them must fault in the
        // written-back contents.
        for (i, &pid) in pids.iter().enumerate() {
            let v = p.with_page(pid, |pg| pg[0]).unwrap();
            assert_eq!(v, i as u8 + 1, "page {pid}");
        }
        let s = p.stats();
        assert!(s.disk_writes >= 3, "dirty evictions happened: {s:?}");
        assert!(s.disk_reads >= 3, "faults happened: {s:?}");
    }

    #[test]
    fn hit_and_miss_accounting() {
        let p = pool(8);
        let a = p.allocate().unwrap();
        p.reset_stats();
        p.with_page(a, |_| ()).unwrap();
        p.with_page(a, |_| ()).unwrap();
        let s = p.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 0);
    }

    #[test]
    fn flush_clears_dirt() {
        let p = pool(4);
        let a = p.allocate().unwrap();
        p.with_page_mut(a, |pg| pg[1] = 9).unwrap();
        p.flush().unwrap();
        let w0 = p.stats().disk_writes;
        p.flush().unwrap();
        assert_eq!(p.stats().disk_writes, w0, "second flush writes nothing");
    }

    #[test]
    fn capacity_one_still_works() {
        let p = pool(1);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        p.with_page_mut(a, |pg| pg[0] = 1).unwrap();
        p.with_page_mut(b, |pg| pg[0] = 2).unwrap();
        assert_eq!(p.with_page(a, |pg| pg[0]).unwrap(), 1);
        assert_eq!(p.with_page(b, |pg| pg[0]).unwrap(), 2);
    }
}
