//! Crash-consistency property test for the group-committed WAL.
//!
//! The group-commit contract: frames are appended unsynced, a shared
//! fsync barrier makes a whole group durable at once, and submitters are
//! acked only after their group's barrier. This test simulates that
//! timeline at the journal level over random update streams and kills
//! the process at every interesting point:
//!
//! * **at a barrier** — the disk holds exactly the acked frames;
//! * **after appends, before the next barrier** — unsynced frames may
//!   have partially reached disk (any prefix, ending at a frame
//!   boundary or torn mid-frame), optionally followed by garbage;
//! * **after everything** — the full stream plus optional garbage.
//!
//! The invariant asserted for every cut: recovery replays a contiguous
//! sequence prefix of the submitted stream that **contains every acked
//! frame** — and at a barrier cut, *exactly* the acked frames. Frames
//! past the acked prefix are a bonus the crash happened to preserve;
//! they must still be byte-exact copies of what was submitted, never an
//! invention. Afterwards the journal must stay writable with the
//! numbering continuing from the recovered tip.
//!
//! The stream mixes relabels with delete ops and marks every third
//! frame as a *window-expiry* frame (the sliding-window engine journals
//! the synthesized inverse batch as a normal frame tagged with the
//! expired window's seq). Expiry adds its own invariant, asserted at
//! every kill point: a replayed expiry tag appears at most once per
//! expired window, in increasing order — recovery can lose an unacked
//! expiry (the engine re-synthesizes it) but can never double-expire.

use proptest::prelude::*;

use graphmine_graph::{DbUpdate, GraphUpdate};
use graphmine_storage::UpdateJournal;

const POOL_PAGES: usize = 4;

/// The submitted stream: `group_sizes[g]` windows share barrier `g`;
/// window `i` carries `ops_per_frame` ops tagged with `i` so a replayed
/// frame is attributable byte-for-byte. Ops cycle through relabels and
/// both delete kinds, and every third frame is an expiry frame tagged
/// with the seq of the window it expires.
fn windows_for(group_sizes: &[usize], ops_per_frame: usize) -> Vec<(Vec<DbUpdate>, Option<u64>)> {
    let total: usize = group_sizes.iter().sum();
    (0..total)
        .map(|i| {
            let ops = (0..ops_per_frame)
                .map(|j| {
                    let update = match j % 3 {
                        0 => GraphUpdate::RelabelVertex { v: j as u32, label: (i * 7 + j) as u32 },
                        1 => GraphUpdate::DeleteEdge { e: (i + j) as u32 },
                        _ => GraphUpdate::DeleteVertex { v: (i + j) as u32 },
                    };
                    DbUpdate { gid: i as u32, update }
                })
                .collect();
            // Expiry frames expire in submission order: frame at index i
            // expires window seq i/3 + 1 (1-based, always < its own seq).
            let expiry = if i % 3 == 2 { Some(i as u64 / 3 + 1) } else { None };
            (ops, expiry)
        })
        .collect()
}

/// Byte offset of the end of each frame, by walking the on-disk headers
/// (`[len u32][crc u32][payload]`), independent of the writer's own
/// bookkeeping.
fn frame_ends(bytes: &[u8], frames: usize) -> Vec<usize> {
    let mut ends = Vec::with_capacity(frames);
    let mut at = 0usize;
    for _ in 0..frames {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        at += 8 + len;
        ends.push(at);
    }
    ends
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(220))]

    #[test]
    fn replay_equals_acked_prefix_at_every_kill_point(
        group_sizes in proptest::collection::vec(1usize..5, 1..8),
        ops_per_frame in 1usize..4,
        kill_kind in 0u8..4,
        selector in any::<u64>(),
        garbage in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("journal.wal");
        let windows = windows_for(&group_sizes, ops_per_frame);
        let total = windows.len();

        // Build the full stream with its real barrier structure, then
        // close the journal so the file can be cut underneath it.
        {
            let mut journal = UpdateJournal::create(&path, POOL_PAGES).unwrap();
            let mut next = 0usize;
            for &gs in &group_sizes {
                for _ in 0..gs {
                    let (ops, expiry) = &windows[next];
                    let seq = journal.append_unsynced(ops, *expiry).unwrap();
                    prop_assert_eq!(seq, next as u64 + 1);
                    next += 1;
                }
                journal.sync().unwrap();
            }
        }
        let bytes = std::fs::read(&path).unwrap();
        let ends = frame_ends(&bytes, total);

        // The kill: the crash happens around group `g`'s barrier. Groups
        // before `g` are acked; of group `g` itself, `appended` frames
        // had been handed to the OS (none of them acked).
        let g = (selector as usize) % (group_sizes.len() + 1);
        let acked: usize = group_sizes[..g.min(group_sizes.len())].iter().sum();
        let appended = if g < group_sizes.len() {
            1 + (selector / 7) as usize % group_sizes[g]
        } else {
            0
        };
        let acked_len = if acked == 0 { 0 } else { ends[acked - 1] };
        let cut = match kill_kind {
            // Exactly at the barrier: the OS wrote nothing further.
            0 => acked_len,
            // A whole number of unsynced frames reached disk.
            1 if appended > 0 => ends[acked + appended - 1],
            // The last unsynced frame is torn mid-write.
            2 if appended > 0 => {
                let start = if acked + appended == 1 { 0 } else { ends[acked + appended - 2] };
                let end = ends[acked + appended - 1];
                start + 1 + (selector / 13) as usize % (end - start - 1).max(1)
            }
            // Everything (including later groups) made it down.
            _ => *ends.last().unwrap(),
        };
        let mut disk = bytes[..cut].to_vec();
        disk.extend_from_slice(&garbage);
        std::fs::write(&path, &disk).unwrap();

        let (mut journal, batches) = UpdateJournal::recover(&path, POOL_PAGES).unwrap();

        // Contiguous prefix, superset of the acked frames, never invented.
        prop_assert!(batches.len() >= acked,
            "lost acked frames: {} acked, {} replayed (cut {cut}, kind {kill_kind})",
            acked, batches.len());
        prop_assert!(batches.len() <= total, "replayed more frames than were ever submitted");
        for (i, batch) in batches.iter().enumerate() {
            prop_assert_eq!(batch.seq, i as u64 + 1, "sequence gap at replay index {}", i);
            prop_assert_eq!(&batch.updates, &windows[i].0, "frame {} diverged on replay", i);
            prop_assert_eq!(batch.expiry, windows[i].1, "expiry tag {} diverged on replay", i);
        }
        // Never double-expire: each expired window seq appears at most
        // once in the replay, in increasing order. A crash between apply
        // and journal simply loses the frame (the prefix ends earlier),
        // so replay never re-delivers an expiry the engine already saw.
        let expired: Vec<u64> = batches.iter().filter_map(|b| b.expiry).collect();
        for w in expired.windows(2) {
            prop_assert!(w[0] < w[1], "expiry seqs replayed out of order or twice: {:?}", expired);
        }
        // At a barrier cut the replay is *exactly* the acked prefix: no
        // torn half-group may survive, garbage or not.
        if kill_kind == 0 {
            prop_assert_eq!(batches.len(), acked,
                "barrier cut must replay exactly the acked prefix");
        }

        // The journal stays writable and the numbering continues.
        let next = journal.append_batch(&windows[0].0).unwrap();
        prop_assert_eq!(next, batches.len() as u64 + 1);
        drop(journal);
        let (_, again) = UpdateJournal::recover(&path, POOL_PAGES).unwrap();
        prop_assert_eq!(again.len(), batches.len() + 1, "post-recovery append lost");
    }
}
