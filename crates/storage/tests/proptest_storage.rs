//! Property tests: the page store and buffer pool behave like an in-memory
//! mirror under arbitrary operation sequences.

use proptest::prelude::*;

use graphmine_storage::{BufferPool, ByteStore, PageFile, PAGE_SIZE};

#[derive(Debug, Clone)]
enum Op {
    Allocate,
    Write { page: usize, at: usize, byte: u8 },
    Read { page: usize, at: usize },
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => Just(Op::Allocate),
        4 => (0..8usize, 0..PAGE_SIZE, any::<u8>()).prop_map(|(page, at, byte)| Op::Write { page, at, byte }),
        4 => (0..8usize, 0..PAGE_SIZE).prop_map(|(page, at)| Op::Read { page, at }),
        1 => Just(Op::Flush),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pool_matches_in_memory_mirror(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        capacity in 1usize..5,
    ) {
        let dir = tempfile::tempdir().unwrap();
        let file = PageFile::create(&dir.path().join("p.db")).unwrap();
        let pool = BufferPool::new(file, capacity);
        let mut mirror: Vec<[u8; PAGE_SIZE]> = Vec::new();

        for op in &ops {
            match *op {
                Op::Allocate => {
                    let pid = pool.allocate().unwrap();
                    prop_assert_eq!(pid as usize, mirror.len());
                    mirror.push([0u8; PAGE_SIZE]);
                }
                Op::Write { page, at, byte } => {
                    if page < mirror.len() {
                        pool.with_page_mut(page as u64, |pg| pg[at] = byte).unwrap();
                        mirror[page][at] = byte;
                    } else {
                        prop_assert!(pool.with_page_mut(page as u64, |_| ()).is_err());
                    }
                }
                Op::Read { page, at } => {
                    if page < mirror.len() {
                        let v = pool.with_page(page as u64, |pg| pg[at]).unwrap();
                        prop_assert_eq!(v, mirror[page][at]);
                    } else {
                        prop_assert!(pool.with_page(page as u64, |_| ()).is_err());
                    }
                }
                Op::Flush => pool.flush().unwrap(),
            }
        }
        // Final full comparison.
        for (pid, expect) in mirror.iter().enumerate() {
            let ok = pool.with_page(pid as u64, |pg| pg == expect).unwrap();
            prop_assert!(ok, "page {} diverged", pid);
        }
    }

    #[test]
    fn bytestore_round_trips_random_records(
        records in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..2000), 1..20),
        capacity in 1usize..4,
    ) {
        let dir = tempfile::tempdir().unwrap();
        let mut store = ByteStore::create(&dir.path().join("b.db"), capacity, std::time::Duration::ZERO).unwrap();
        let ids: Vec<_> = records.iter().map(|r| store.append(r).unwrap()).collect();
        for (id, expect) in ids.iter().zip(records.iter()) {
            prop_assert_eq!(&store.read(*id).unwrap(), expect);
        }
    }
}
