//! Relaxed-atomic event counters.
//!
//! A [`Counters`] table is a fixed array of `AtomicU64`s indexed by
//! [`Counter`]; every increment is a single relaxed `fetch_add`, cheap
//! enough to leave enabled in release builds and safe to bump from any
//! number of worker threads concurrently.

use std::sync::atomic::{AtomicU64, Ordering};

/// Names for the counter slots tracked across the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Join candidates generated during merge-join (both policies).
    CandidatesGenerated,
    /// Exact subgraph-isomorphism support counts actually executed.
    IsoTestsRun,
    /// Isomorphism tests skipped by the edge-histogram screen.
    IsoTestsPruned,
    /// Candidates verified frequent by CheckFrequency.
    VerifiedFrequent,
    /// Candidates verified infrequent by CheckFrequency.
    VerifiedInfrequent,
    /// Candidates skipped because the known (pre-update) set answered.
    KnownSkipped,
    /// Candidates resolved by the support upper bound without counting.
    BoundShortcut,
    /// Patterns dropped from the pre-update result via the prune set.
    PruneSetHits,
    /// Incremental classification: unchanged-frequent patterns (UF).
    IncUnchangedFrequent,
    /// Incremental classification: frequent-to-infrequent patterns (FI).
    IncFrequentToInfrequent,
    /// Incremental classification: infrequent-to-frequent patterns (IF).
    IncInfrequentToFrequent,
    /// Mining units processed (initial mine + incremental re-mines).
    UnitsMined,
    /// Partition-tree nodes merged bottom-up.
    NodesMerged,
    /// Pattern extensions generated inside the unit miners (gSpan/Gaston).
    MinerExtensions,
    /// Frequent patterns emitted by the unit miners.
    MinerPatterns,
    /// Occurrence rows produced by embedding-list extension.
    EmbeddingsExtended,
    /// Embedding lists dropped because they exceeded the memory budget.
    EmbeddingsSpilled,
    /// Backtracking embedding searches actually executed (seeded
    /// `MatchState::search` invocations).
    SearchCalls,
    /// Per-graph embedding searches skipped because an embedding list
    /// answered the support query instead.
    SearchCallsAvoided,
    /// Serve: `status` requests handled.
    ReqStatus,
    /// Serve: `patterns` requests handled.
    ReqPatterns,
    /// Serve: `support` requests handled.
    ReqSupport,
    /// Serve: `update` requests handled (acknowledged batches).
    ReqUpdate,
    /// Serve: `shutdown` requests handled.
    ReqShutdown,
    /// Serve: requests rejected as malformed or failed while handled.
    ReqErrors,
    /// Serve: connections shed with `overloaded` (bounded queue full).
    ReqOverloaded,
    /// Serve: update batches appended (and fsynced) to the WAL.
    WalBatchesAppended,
    /// Serve: journaled batches replayed during startup recovery.
    WalBatchesReplayed,
    /// Serve: support queries answered from the warm result epoch `P(D)`.
    SupportFromPatterns,
    /// Serve: support queries answered by the embedding-list engine.
    SupportFromEmbeddings,
    /// Serve: support queries that fell back to isomorphism search.
    SupportFromSearch,
    /// Serve: result-epoch swaps installed after update re-mines.
    EpochSwaps,
    /// Ingest: update windows acknowledged through the streaming
    /// pipeline (admitted, journaled, and made durable).
    IngestWindows,
    /// Ingest: raw update ops received before coalescing.
    IngestOpsIn,
    /// Ingest: ops removed by window coalescing (folded last-writes and
    /// cancelled no-op relabels).
    IngestOpsCoalesced,
    /// Ingest: windows shed with a `backpressure` reply (pending-window
    /// bound hit).
    IngestBackpressure,
    /// Ingest: peak number of acked-but-unapplied windows (a high-water
    /// gauge maintained with [`Counters::max`], not a sum).
    IngestPendingPeak,
    /// Ingest: windows expired past the sliding-window retention horizon
    /// (one synthesized inverse batch journaled and folded per window).
    IngestWindowsExpired,
    /// WAL group commit: fsync barriers executed by the committer.
    WalGroupCommits,
    /// WAL group commit: frames made durable across all barriers.
    WalGroupFrames,
    /// Executor: jobs run through the shared work-stealing pool.
    ExecJobs,
    /// Executor: jobs a worker took from another worker's queue.
    ExecSteals,
    /// Executor: peak batch size submitted to the pool (a high-water
    /// gauge maintained with [`Counters::max`], not a sum).
    ExecQueuePeak,
    /// Executor: jobs whose closure panicked (surfaced as `ExecError`).
    ExecPanics,
    /// Router: per-shard requests fanned out by scatter/gather reads.
    ScatterFanout,
    /// Router: gathered answers served degraded (at least one dead shard).
    GatherPartial,
    /// Router: per-shard request retries after a transport failure.
    ShardRetries,
    /// Router: reads hedged to a secondary replica after the primary
    /// missed the latency threshold.
    HedgedReads,
    /// Router: two-phase update windows aborted before the global epoch
    /// advanced (prepare failed on some touched shard).
    Epoch2pcAborts,
    /// Router: read answers served from the epoch-keyed result cache.
    RouterCacheHits,
    /// Router: cacheable read answers that had to be computed (not in
    /// the cache for the current global epoch).
    RouterCacheMisses,
    /// Router: cached answers evicted to stay under the byte budget.
    RouterCacheEvictions,
    /// Router: SON phase-1 `patterns` unions cut by the candidate bound
    /// (the answer carries `"truncated":1`).
    RouterPhase1Truncated,
}

impl Counter {
    /// Every counter, in slot order.
    pub const ALL: [Counter; 53] = [
        Counter::CandidatesGenerated,
        Counter::IsoTestsRun,
        Counter::IsoTestsPruned,
        Counter::VerifiedFrequent,
        Counter::VerifiedInfrequent,
        Counter::KnownSkipped,
        Counter::BoundShortcut,
        Counter::PruneSetHits,
        Counter::IncUnchangedFrequent,
        Counter::IncFrequentToInfrequent,
        Counter::IncInfrequentToFrequent,
        Counter::UnitsMined,
        Counter::NodesMerged,
        Counter::MinerExtensions,
        Counter::MinerPatterns,
        Counter::EmbeddingsExtended,
        Counter::EmbeddingsSpilled,
        Counter::SearchCalls,
        Counter::SearchCallsAvoided,
        Counter::ReqStatus,
        Counter::ReqPatterns,
        Counter::ReqSupport,
        Counter::ReqUpdate,
        Counter::ReqShutdown,
        Counter::ReqErrors,
        Counter::ReqOverloaded,
        Counter::WalBatchesAppended,
        Counter::WalBatchesReplayed,
        Counter::SupportFromPatterns,
        Counter::SupportFromEmbeddings,
        Counter::SupportFromSearch,
        Counter::EpochSwaps,
        Counter::IngestWindows,
        Counter::IngestOpsIn,
        Counter::IngestOpsCoalesced,
        Counter::IngestBackpressure,
        Counter::IngestPendingPeak,
        Counter::IngestWindowsExpired,
        Counter::WalGroupCommits,
        Counter::WalGroupFrames,
        Counter::ExecJobs,
        Counter::ExecSteals,
        Counter::ExecQueuePeak,
        Counter::ExecPanics,
        Counter::ScatterFanout,
        Counter::GatherPartial,
        Counter::ShardRetries,
        Counter::HedgedReads,
        Counter::Epoch2pcAborts,
        Counter::RouterCacheHits,
        Counter::RouterCacheMisses,
        Counter::RouterCacheEvictions,
        Counter::RouterPhase1Truncated,
    ];

    /// Stable snake_case identifier used in reports.
    pub const fn name(self) -> &'static str {
        match self {
            Counter::CandidatesGenerated => "candidates_generated",
            Counter::IsoTestsRun => "iso_tests_run",
            Counter::IsoTestsPruned => "iso_tests_pruned",
            Counter::VerifiedFrequent => "verified_frequent",
            Counter::VerifiedInfrequent => "verified_infrequent",
            Counter::KnownSkipped => "known_skipped",
            Counter::BoundShortcut => "bound_shortcut",
            Counter::PruneSetHits => "prune_set_hits",
            Counter::IncUnchangedFrequent => "inc_unchanged_frequent",
            Counter::IncFrequentToInfrequent => "inc_frequent_to_infrequent",
            Counter::IncInfrequentToFrequent => "inc_infrequent_to_frequent",
            Counter::UnitsMined => "units_mined",
            Counter::NodesMerged => "nodes_merged",
            Counter::MinerExtensions => "miner_extensions",
            Counter::MinerPatterns => "miner_patterns",
            Counter::EmbeddingsExtended => "embeddings_extended",
            Counter::EmbeddingsSpilled => "embeddings_spilled",
            Counter::SearchCalls => "search_calls",
            Counter::SearchCallsAvoided => "search_calls_avoided",
            Counter::ReqStatus => "req_status",
            Counter::ReqPatterns => "req_patterns",
            Counter::ReqSupport => "req_support",
            Counter::ReqUpdate => "req_update",
            Counter::ReqShutdown => "req_shutdown",
            Counter::ReqErrors => "req_errors",
            Counter::ReqOverloaded => "req_overloaded",
            Counter::WalBatchesAppended => "wal_batches_appended",
            Counter::WalBatchesReplayed => "wal_batches_replayed",
            Counter::SupportFromPatterns => "support_from_patterns",
            Counter::SupportFromEmbeddings => "support_from_embeddings",
            Counter::SupportFromSearch => "support_from_search",
            Counter::EpochSwaps => "epoch_swaps",
            Counter::IngestWindows => "ingest_windows",
            Counter::IngestOpsIn => "ingest_ops_in",
            Counter::IngestOpsCoalesced => "ingest_ops_coalesced",
            Counter::IngestBackpressure => "ingest_backpressure",
            Counter::IngestPendingPeak => "ingest_pending_peak",
            Counter::IngestWindowsExpired => "ingest_windows_expired",
            Counter::WalGroupCommits => "wal_group_commits",
            Counter::WalGroupFrames => "wal_group_frames",
            Counter::ExecJobs => "exec_jobs",
            Counter::ExecSteals => "exec_steals",
            Counter::ExecQueuePeak => "exec_queue_peak",
            Counter::ExecPanics => "exec_panics",
            Counter::ScatterFanout => "scatter_fanout",
            Counter::GatherPartial => "gather_partial",
            Counter::ShardRetries => "shard_retries",
            Counter::HedgedReads => "hedged_reads",
            Counter::Epoch2pcAborts => "epoch_2pc_aborts",
            Counter::RouterCacheHits => "router_cache_hits",
            Counter::RouterCacheMisses => "router_cache_misses",
            Counter::RouterCacheEvictions => "router_cache_evictions",
            Counter::RouterPhase1Truncated => "router_phase1_truncated",
        }
    }

    /// Looks a counter up by its report identifier.
    pub fn from_name(name: &str) -> Option<Counter> {
        Counter::ALL.iter().copied().find(|c| c.name() == name)
    }
}

/// A fixed table of relaxed atomic event counters.
#[derive(Debug)]
pub struct Counters {
    slots: [AtomicU64; Counter::ALL.len()],
}

// `[AtomicU64; N]: Default` stops at N = 32, so spell it out.
impl Default for Counters {
    fn default() -> Self {
        Counters::new()
    }
}

/// A point-in-time copy of a [`Counters`] table.
pub type CounterSnapshot = Vec<(&'static str, u64)>;

impl Counters {
    /// A zeroed counter table.
    pub const fn new() -> Self {
        Counters { slots: [const { AtomicU64::new(0) }; Counter::ALL.len()] }
    }

    /// A shared sink that accepts increments and is never read.
    ///
    /// Un-instrumented call paths count into this so the counted and
    /// uncounted variants of a function can share one implementation.
    pub fn noop() -> &'static Counters {
        static NOOP: Counters = Counters::new();
        &NOOP
    }

    /// Adds `n` to a counter (relaxed).
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        self.slots[c as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Increments a counter by one (relaxed).
    #[inline]
    pub fn bump(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Raises a counter to at least `v` (relaxed `fetch_max`), for
    /// high-water gauges like `exec_queue_peak`.
    #[inline]
    pub fn max(&self, c: Counter, v: u64) {
        self.slots[c as usize].fetch_max(v, Ordering::Relaxed);
    }

    /// Reads a counter (relaxed).
    pub fn get(&self, c: Counter) -> u64 {
        self.slots[c as usize].load(Ordering::Relaxed)
    }

    /// Adds every value from `other` into this table.
    pub fn absorb(&self, other: &Counters) {
        for c in Counter::ALL {
            self.add(c, other.get(c));
        }
    }

    /// Copies the current values out, in slot order.
    pub fn snapshot(&self) -> CounterSnapshot {
        Counter::ALL.iter().map(|&c| (c.name(), self.get(c))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for c in Counter::ALL {
            assert_eq!(Counter::from_name(c.name()), Some(c));
        }
        assert_eq!(Counter::from_name("nonsense"), None);
    }

    #[test]
    fn add_get_snapshot() {
        let t = Counters::new();
        t.bump(Counter::IsoTestsRun);
        t.add(Counter::IsoTestsRun, 4);
        t.add(Counter::PruneSetHits, 2);
        assert_eq!(t.get(Counter::IsoTestsRun), 5);
        let snap = t.snapshot();
        assert_eq!(snap.len(), Counter::ALL.len());
        assert!(snap.contains(&("iso_tests_run", 5)));
        assert!(snap.contains(&("prune_set_hits", 2)));
        assert!(snap.contains(&("candidates_generated", 0)));
    }

    #[test]
    fn max_is_a_high_water_mark() {
        let t = Counters::new();
        t.max(Counter::ExecQueuePeak, 5);
        t.max(Counter::ExecQueuePeak, 3);
        assert_eq!(t.get(Counter::ExecQueuePeak), 5);
        t.max(Counter::ExecQueuePeak, 9);
        assert_eq!(t.get(Counter::ExecQueuePeak), 9);
    }

    #[test]
    fn absorb_sums_tables() {
        let a = Counters::new();
        let b = Counters::new();
        a.add(Counter::UnitsMined, 3);
        b.add(Counter::UnitsMined, 4);
        b.add(Counter::NodesMerged, 1);
        a.absorb(&b);
        assert_eq!(a.get(Counter::UnitsMined), 7);
        assert_eq!(a.get(Counter::NodesMerged), 1);
    }
}
