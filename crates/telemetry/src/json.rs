//! A dependency-free JSON subset: enough to write and re-read run
//! reports. Supports objects, arrays, strings (with the standard
//! escapes), unsigned integers, and `null` — exactly what [`crate::RunReport`]
//! emits. Floats, booleans, and exotic escapes are out of scope.

use std::fmt::Write as _;

/// A parsed JSON value (subset: no floats or booleans).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// An unsigned integer.
    Num(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Serializes with `\"`/`\\` and control-character escaping.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Num(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::Str(s) => write_escaped(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a value, requiring the whole input to be consumed.
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError { at: pos, msg: "trailing input" });
        }
        Ok(v)
    }

    /// The fields of an object, or `None` for other variants.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Looks a field up in an object by key.
    pub fn field(&self, key: &str) -> Option<&JsonValue> {
        self.as_obj()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The items of an array, or `None` for other variants.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The integer value, or `None` for other variants.
    pub fn as_num(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, or `None` for other variants.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError { at: *pos, msg: "unexpected end of input" }),
        Some(b'n') => {
            if bytes[*pos..].starts_with(b"null") {
                *pos += 4;
                Ok(JsonValue::Null)
            } else {
                Err(JsonError { at: *pos, msg: "expected null" })
            }
        }
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(JsonError { at: *pos, msg: "expected , or ]" }),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(JsonError { at: *pos, msg: "expected :" });
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(fields));
                    }
                    _ => return Err(JsonError { at: *pos, msg: "expected , or }" }),
                }
            }
        }
        Some(c) if c.is_ascii_digit() => {
            let start = *pos;
            let mut n: u64 = 0;
            while let Some(d) = bytes.get(*pos).filter(|b| b.is_ascii_digit()) {
                n = n
                    .checked_mul(10)
                    .and_then(|n| n.checked_add(u64::from(d - b'0')))
                    .ok_or(JsonError { at: start, msg: "integer overflow" })?;
                *pos += 1;
            }
            Ok(JsonValue::Num(n))
        }
        Some(_) => Err(JsonError { at: *pos, msg: "unexpected character" }),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(JsonError { at: *pos, msg: "expected string" });
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError { at: *pos, msg: "unterminated string" }),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or(JsonError { at: *pos, msg: "bad \\u escape" })?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError { at: *pos, msg: "bad \\u escape" })?;
                        out.push(
                            char::from_u32(code)
                                .ok_or(JsonError { at: *pos, msg: "bad \\u escape" })?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(JsonError { at: *pos, msg: "bad escape" }),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy the full UTF-8 character, not just one byte.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError { at: *pos, msg: "invalid utf-8" })?;
                let ch = rest.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structure() {
        let v = JsonValue::Obj(vec![
            ("name".into(), JsonValue::Str("merge_join".into())),
            ("node".into(), JsonValue::Null),
            ("dur_ns".into(), JsonValue::Num(123456789)),
            ("children".into(), JsonValue::Arr(vec![JsonValue::Num(1), JsonValue::Num(2)])),
        ]);
        let text = v.to_json();
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
    }

    #[test]
    fn escapes_round_trip() {
        let v = JsonValue::Str("quote \" slash \\ newline \n tab \t bell \u{7}".into());
        assert_eq!(JsonValue::parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn accepts_whitespace_everywhere() {
        let v = JsonValue::parse(" { \"a\" : [ 1 , null ] } ").unwrap();
        assert_eq!(v.field("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("12 34").is_err());
        assert!(JsonValue::parse("\"open").is_err());
        assert!(JsonValue::parse("99999999999999999999999").is_err());
    }
}
