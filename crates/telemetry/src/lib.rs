//! Pipeline telemetry for the PartMiner/IncPartMiner stack.
//!
//! Three layers, cheap enough to stay on in release builds:
//!
//! * [`Counters`] — a fixed table of relaxed [`std::sync::atomic::AtomicU64`]
//!   event counters ([`Counter`] names the slots): candidates generated,
//!   isomorphism tests run/pruned, patterns verified frequent/infrequent,
//!   prune-set hits, the incremental UF/FI/IF tallies, and friends.
//! * [`Telemetry`] — a per-run handle that owns a [`Counters`] table and
//!   records hierarchical [`SpanRecord`]s (wall time + thread id) through
//!   guard-based [`Telemetry::span`] / [`Telemetry::span_node`] calls.
//!   Nesting is tracked per thread, so spans opened inside worker threads
//!   become that thread's own roots.
//! * [`RunReport`] — a serializable summary built from a [`Telemetry`]
//!   handle: per-stage wall-time totals (from top-level spans), the final
//!   counter table, and the raw span log. [`RunReport::to_json`] emits JSON
//!   with no external dependencies and [`RunReport::from_json`] parses it
//!   back, so reports round-trip through files and test harnesses.
//!
//! Pipeline stats structs (`MineStats`, `IncStats`, …) expose their totals
//! through the [`ReportSource`] trait so reports and tests can reconcile
//! the ad-hoc per-phase timings against the span log.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod counters;
mod json;
mod report;
mod spans;

pub use counters::{Counter, CounterSnapshot, Counters};
pub use json::{JsonError, JsonValue};
pub use report::{ReportSource, RunReport, StageTotal};
pub use spans::{SpanGuard, SpanRecord, Telemetry};
