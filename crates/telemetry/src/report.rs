//! Machine-readable run reports.

use crate::counters::Counter;
use crate::json::{JsonError, JsonValue};
use crate::spans::{SpanRecord, Telemetry};

/// Aggregated wall time for one pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTotal {
    /// Stage name (matches the span name, e.g. `unit_mine`).
    pub name: String,
    /// Summed wall time across the stage's spans, in nanoseconds.
    pub total_ns: u64,
    /// Number of spans contributing to the total.
    pub count: u64,
}

/// A source of per-stage timings and counter totals — the common face of
/// the pipeline's ad-hoc stats structs (`MineStats`, `IncStats`, …).
pub trait ReportSource {
    /// Stage wall-time totals this source can vouch for.
    fn stage_totals(&self) -> Vec<StageTotal> {
        Vec::new()
    }

    /// Counter totals this source can vouch for, by report name.
    fn counter_totals(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }
}

/// A serializable summary of one mining run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Which algorithm produced the run (e.g. `partminer`).
    pub algo: String,
    /// Wall time from telemetry creation to report capture, nanoseconds.
    pub total_ns: u64,
    /// Per-stage totals, aggregated from top-level spans by name.
    pub stages: Vec<StageTotal>,
    /// Final counter table, in slot order.
    pub counters: Vec<(String, u64)>,
    /// The raw span log.
    pub spans: Vec<SpanRecord>,
}

impl RunReport {
    /// Captures a report from a live telemetry handle.
    ///
    /// Stage totals come from *top-level* spans (no parent) grouped by
    /// name, so on a serial run they partition the total wall time.
    pub fn capture(algo: &str, tel: &Telemetry) -> RunReport {
        let spans = tel.spans();
        let mut stages: Vec<StageTotal> = Vec::new();
        for s in spans.iter().filter(|s| s.parent.is_none()) {
            match stages.iter_mut().find(|st| st.name == s.name) {
                Some(st) => {
                    st.total_ns += s.dur_ns;
                    st.count += 1;
                }
                None => {
                    stages.push(StageTotal { name: s.name.clone(), total_ns: s.dur_ns, count: 1 })
                }
            }
        }
        RunReport {
            algo: algo.to_string(),
            total_ns: tel.elapsed_ns(),
            stages,
            counters: tel
                .counters()
                .snapshot()
                .into_iter()
                .map(|(name, v)| (name.to_string(), v))
                .collect(),
            spans,
        }
    }

    /// Folds a stats struct's totals in: stages merge by name, counters
    /// add by name (unknown counter names are appended verbatim).
    pub fn absorb(&mut self, src: &dyn ReportSource) {
        for st in src.stage_totals() {
            match self.stages.iter_mut().find(|s| s.name == st.name) {
                Some(existing) => {
                    existing.total_ns += st.total_ns;
                    existing.count += st.count;
                }
                None => self.stages.push(st),
            }
        }
        for (name, v) in src.counter_totals() {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, existing)) => *existing += v,
                None => self.counters.push((name.to_string(), v)),
            }
        }
    }

    /// The value of a counter by report name (0 when absent).
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters.iter().find(|(n, _)| n == c.name()).map(|&(_, v)| v).unwrap_or(0)
    }

    /// Summed wall time of one stage (0 when absent).
    pub fn stage_ns(&self, name: &str) -> u64 {
        self.stages.iter().find(|s| s.name == name).map(|s| s.total_ns).unwrap_or(0)
    }

    /// Serializes the report as a single JSON document.
    pub fn to_json(&self) -> String {
        let opt = |v: Option<u64>| match v {
            Some(n) => JsonValue::Num(n),
            None => JsonValue::Null,
        };
        JsonValue::Obj(vec![
            ("algo".into(), JsonValue::Str(self.algo.clone())),
            ("total_ns".into(), JsonValue::Num(self.total_ns)),
            (
                "stages".into(),
                JsonValue::Arr(
                    self.stages
                        .iter()
                        .map(|s| {
                            JsonValue::Obj(vec![
                                ("name".into(), JsonValue::Str(s.name.clone())),
                                ("total_ns".into(), JsonValue::Num(s.total_ns)),
                                ("count".into(), JsonValue::Num(s.count)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "counters".into(),
                JsonValue::Obj(
                    self.counters.iter().map(|(n, v)| (n.clone(), JsonValue::Num(*v))).collect(),
                ),
            ),
            (
                "spans".into(),
                JsonValue::Arr(
                    self.spans
                        .iter()
                        .map(|s| {
                            JsonValue::Obj(vec![
                                ("id".into(), JsonValue::Num(s.id)),
                                ("parent".into(), opt(s.parent)),
                                ("name".into(), JsonValue::Str(s.name.clone())),
                                ("node".into(), opt(s.node)),
                                ("thread".into(), JsonValue::Str(s.thread.clone())),
                                ("start_ns".into(), JsonValue::Num(s.start_ns)),
                                ("dur_ns".into(), JsonValue::Num(s.dur_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .to_json()
    }

    /// Parses a report previously produced by [`RunReport::to_json`].
    pub fn from_json(text: &str) -> Result<RunReport, JsonError> {
        let bad = |msg: &'static str| JsonError { at: 0, msg };
        let v = JsonValue::parse(text)?;
        let num = |v: Option<&JsonValue>, msg| v.and_then(JsonValue::as_num).ok_or(bad(msg));
        let opt_num = |v: Option<&JsonValue>, msg: &'static str| match v {
            Some(JsonValue::Null) | None => Ok(None),
            Some(other) => other.as_num().map(Some).ok_or(bad(msg)),
        };
        let text_of = |v: Option<&JsonValue>, msg| {
            v.and_then(JsonValue::as_str).map(str::to_string).ok_or(bad(msg))
        };

        let mut stages = Vec::new();
        for s in v.field("stages").and_then(JsonValue::as_arr).ok_or(bad("missing stages"))? {
            stages.push(StageTotal {
                name: text_of(s.field("name"), "stage name")?,
                total_ns: num(s.field("total_ns"), "stage total_ns")?,
                count: num(s.field("count"), "stage count")?,
            });
        }
        let counters = v
            .field("counters")
            .and_then(JsonValue::as_obj)
            .ok_or(bad("missing counters"))?
            .iter()
            .map(|(n, v)| Ok((n.clone(), v.as_num().ok_or(bad("counter value"))?)))
            .collect::<Result<Vec<_>, JsonError>>()?;
        let mut spans = Vec::new();
        for s in v.field("spans").and_then(JsonValue::as_arr).ok_or(bad("missing spans"))? {
            spans.push(SpanRecord {
                id: num(s.field("id"), "span id")?,
                parent: opt_num(s.field("parent"), "span parent")?,
                name: text_of(s.field("name"), "span name")?,
                node: opt_num(s.field("node"), "span node")?,
                thread: text_of(s.field("thread"), "span thread")?,
                start_ns: num(s.field("start_ns"), "span start_ns")?,
                dur_ns: num(s.field("dur_ns"), "span dur_ns")?,
            });
        }
        Ok(RunReport {
            algo: text_of(v.field("algo"), "missing algo")?,
            total_ns: num(v.field("total_ns"), "missing total_ns")?,
            stages,
            counters,
            spans,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Counter;

    #[test]
    fn capture_groups_top_level_spans() {
        let tel = Telemetry::new();
        {
            let _p = tel.span("partition");
        }
        for node in 0..3 {
            let _u = tel.span_node("unit_mine", node);
        }
        {
            let _m = tel.span("merge_join");
            let _inner = tel.span("check_frequency"); // nested: not a stage
        }
        tel.counters().add(Counter::CandidatesGenerated, 7);
        let report = RunReport::capture("partminer", &tel);
        assert_eq!(report.algo, "partminer");
        let unit = report.stages.iter().find(|s| s.name == "unit_mine").unwrap();
        assert_eq!(unit.count, 3);
        assert!(report.stages.iter().all(|s| s.name != "check_frequency"));
        assert_eq!(report.counter(Counter::CandidatesGenerated), 7);
        assert_eq!(report.spans.len(), 6);
        // Top-level stages partition the run: their sum cannot exceed the
        // total wall time on a serial run.
        let staged: u64 = report.stages.iter().map(|s| s.total_ns).sum();
        assert!(staged <= report.total_ns);
    }

    #[test]
    fn json_round_trip_preserves_report() {
        let tel = Telemetry::new();
        {
            let _p = tel.span("partition");
            let _u = tel.span_node("unit_mine", 2);
        }
        tel.counters().add(Counter::IsoTestsRun, 11);
        tel.counters().add(Counter::VerifiedFrequent, 3);
        let report = RunReport::capture("incpartminer", &tel);
        let parsed = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn absorb_merges_stats() {
        struct Fake;
        impl ReportSource for Fake {
            fn stage_totals(&self) -> Vec<StageTotal> {
                vec![StageTotal { name: "partition".into(), total_ns: 50, count: 1 }]
            }
            fn counter_totals(&self) -> Vec<(&'static str, u64)> {
                vec![(Counter::CandidatesGenerated.name(), 5), ("custom_total", 2)]
            }
        }
        let tel = Telemetry::new();
        {
            let _p = tel.span("partition");
        }
        tel.counters().add(Counter::CandidatesGenerated, 1);
        let mut report = RunReport::capture("partminer", &tel);
        let base_partition = report.stage_ns("partition");
        report.absorb(&Fake);
        assert_eq!(report.stage_ns("partition"), base_partition + 50);
        assert_eq!(report.counter(Counter::CandidatesGenerated), 6);
        assert!(report.counters.iter().any(|(n, v)| n == "custom_total" && *v == 2));
    }
}
