//! Hierarchical wall-time spans.
//!
//! A [`Telemetry`] handle hands out RAII [`SpanGuard`]s; each records a
//! [`SpanRecord`] (name, optional partition node, thread id, start offset
//! and duration) when dropped. Parent/child nesting is tracked with a
//! per-thread stack, so spans opened on worker threads form their own
//! per-thread trees while spans on the driving thread nest as written.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::counters::Counters;

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within the run (allocation order, not completion order).
    pub id: u64,
    /// Enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Stage name, e.g. `unit_mine` or `merge_join`.
    pub name: String,
    /// Partition-tree node the span worked on, when applicable.
    pub node: Option<u64>,
    /// Debug identifier of the recording thread.
    pub thread: String,
    /// Start offset from the handle's creation, in nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, in nanoseconds.
    pub dur_ns: u64,
}

// Per-thread stack of open spans, tagged with the owning `Telemetry`'s
// address so interleaved handles (e.g. parallel tests) don't adopt each
// other's spans as parents.
thread_local! {
    static OPEN: RefCell<Vec<(usize, u64)>> = const { RefCell::new(Vec::new()) };
}

/// A per-run telemetry handle: one counter table plus a span log.
#[derive(Debug)]
pub struct Telemetry {
    counters: Counters,
    spans: Mutex<Vec<SpanRecord>>,
    next_id: AtomicU64,
    epoch: Instant,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// A fresh handle; the creation instant becomes the span epoch.
    pub fn new() -> Self {
        Telemetry {
            counters: Counters::new(),
            spans: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// The run's counter table.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Nanoseconds since the handle was created.
    pub fn elapsed_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Opens a span; it is recorded when the returned guard drops.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        self.open(name, None)
    }

    /// Opens a span tied to a partition-tree node.
    pub fn span_node(&self, name: &'static str, node: u64) -> SpanGuard<'_> {
        self.open(name, Some(node))
    }

    fn open(&self, name: &'static str, node: Option<u64>) -> SpanGuard<'_> {
        let key = self as *const Telemetry as usize;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = OPEN.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.iter().rev().find(|&&(k, _)| k == key).map(|&(_, id)| id);
            stack.push((key, id));
            parent
        });
        SpanGuard { tel: self, id, parent, name, node, start: Instant::now() }
    }

    /// A copy of every span recorded so far.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    fn record(&self, rec: SpanRecord) {
        self.spans.lock().unwrap_or_else(|e| e.into_inner()).push(rec);
    }
}

/// RAII guard for an open span; records it when dropped.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    tel: &'a Telemetry,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    node: Option<u64>,
    start: Instant,
}

impl SpanGuard<'_> {
    /// The span's id, usable for manual cross-thread parenting.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let dur_ns = self.start.elapsed().as_nanos() as u64;
        let start_ns = self.start.duration_since(self.tel.epoch).as_nanos() as u64;
        let key = self.tel as *const Telemetry as usize;
        OPEN.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&(k, id)| k == key && id == self.id) {
                stack.remove(pos);
            }
        });
        self.tel.record(SpanRecord {
            id: self.id,
            parent: self.parent,
            name: self.name.to_string(),
            node: self.node,
            thread: format!("{:?}", std::thread::current().id()),
            start_ns,
            dur_ns,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Counter;

    fn by_name<'a>(spans: &'a [SpanRecord], name: &str) -> &'a SpanRecord {
        spans.iter().find(|s| s.name == name).expect("span present")
    }

    #[test]
    fn spans_nest_on_one_thread() {
        let tel = Telemetry::new();
        {
            let _outer = tel.span("mine");
            {
                let _inner = tel.span_node("unit_mine", 3);
            }
            let _sibling = tel.span_node("merge_join", 1);
        }
        let spans = tel.spans();
        assert_eq!(spans.len(), 3);
        let outer = by_name(&spans, "mine");
        let inner = by_name(&spans, "unit_mine");
        let sibling = by_name(&spans, "merge_join");
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(inner.node, Some(3));
        assert_eq!(sibling.parent, Some(outer.id));
        // Children finish within the parent's window.
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
    }

    #[test]
    fn interleaved_handles_do_not_adopt_each_other() {
        let a = Telemetry::new();
        let b = Telemetry::new();
        {
            let _on_a = a.span("outer_a");
            let _on_b = b.span("on_b");
            let _inner_a = a.span("inner_a");
        }
        assert_eq!(by_name(&b.spans(), "on_b").parent, None);
        let spans = a.spans();
        let outer = by_name(&spans, "outer_a");
        assert_eq!(by_name(&spans, "inner_a").parent, Some(outer.id));
    }

    #[test]
    fn worker_thread_spans_root_at_their_thread() {
        let tel = Telemetry::new();
        let _root = tel.span("mine");
        crossbeam::thread::scope(|scope| {
            for unit in 0..4u64 {
                let tel = &tel;
                scope.spawn(move |_| {
                    let _s = tel.span_node("unit_mine", unit);
                    tel.counters().bump(Counter::UnitsMined);
                });
            }
        })
        .expect("scope");
        drop(_root);
        let spans = tel.spans();
        let workers: Vec<_> = spans.iter().filter(|s| s.name == "unit_mine").collect();
        assert_eq!(workers.len(), 4);
        let main_thread = format!("{:?}", std::thread::current().id());
        for w in &workers {
            // Worker spans are their own roots, on a non-main thread.
            assert_eq!(w.parent, None);
            assert_ne!(w.thread, main_thread);
        }
        assert_eq!(tel.counters().get(Counter::UnitsMined), 4);
    }

    #[test]
    fn counters_accumulate_across_threads() {
        let tel = Telemetry::new();
        crossbeam::thread::scope(|scope| {
            for _ in 0..8 {
                let tel = &tel;
                scope.spawn(move |_| {
                    for _ in 0..1000 {
                        tel.counters().bump(Counter::IsoTestsRun);
                    }
                    tel.counters().add(Counter::CandidatesGenerated, 5);
                });
            }
        })
        .expect("scope");
        assert_eq!(tel.counters().get(Counter::IsoTestsRun), 8000);
        assert_eq!(tel.counters().get(Counter::CandidatesGenerated), 40);
    }
}
