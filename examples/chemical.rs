//! Static mining of molecule-like graphs — the classic frequent-subgraph
//! workload (gSpan and Gaston were both evaluated on chemical compound
//! sets). Builds a small library of hydrocarbon-flavoured structures and
//! reports the common substructures found by the Gaston-style unit miner,
//! cross-checking gSpan.
//!
//! Run with: `cargo run --release --example chemical`

use graphmine_graph::{Graph, GraphDb};
use graphmine_miner::{closed_patterns, maximal_patterns, GSpan, Gaston, MemoryMiner};

// Atom labels.
const C: u32 = 0;
const O: u32 = 1;
const N: u32 = 2;
// Bond labels.
const SINGLE: u32 = 0;
const DOUBLE: u32 = 1;
const AROMATIC: u32 = 2;

/// A benzene ring, optionally decorated.
fn benzene(decoration: Option<(u32, u32)>) -> Graph {
    let mut g = Graph::new();
    let ring: Vec<_> = (0..6).map(|_| g.add_vertex(C)).collect();
    for i in 0..6 {
        g.add_edge(ring[i], ring[(i + 1) % 6], AROMATIC).unwrap();
    }
    if let Some((atom, bond)) = decoration {
        let d = g.add_vertex(atom);
        g.add_edge(ring[0], d, bond).unwrap();
    }
    g
}

/// A small carboxylic-acid-like chain: C-C-C(=O)-O.
fn acid_chain(extra_carbons: usize) -> Graph {
    let mut g = Graph::new();
    let mut prev = g.add_vertex(C);
    for _ in 0..extra_carbons {
        let c = g.add_vertex(C);
        g.add_edge(prev, c, SINGLE).unwrap();
        prev = c;
    }
    let carbonyl_c = g.add_vertex(C);
    g.add_edge(prev, carbonyl_c, SINGLE).unwrap();
    let o1 = g.add_vertex(O);
    g.add_edge(carbonyl_c, o1, DOUBLE).unwrap();
    let o2 = g.add_vertex(O);
    g.add_edge(carbonyl_c, o2, SINGLE).unwrap();
    g
}

/// An amide-ish variant: chain ending in C(=O)-N.
fn amide_chain(extra_carbons: usize) -> Graph {
    let mut g = acid_chain(extra_carbons);
    // Replace the hydroxyl oxygen with nitrogen.
    let last = g.vertex_count() as u32 - 1;
    g.set_vlabel(last, N).unwrap();
    g
}

fn main() {
    let mut compounds = Vec::new();
    for i in 0..20 {
        compounds.push(benzene(None));
        compounds.push(benzene(Some((O, SINGLE))));
        compounds.push(acid_chain(1 + i % 3));
        compounds.push(amide_chain(1 + i % 2));
    }
    let db = GraphDb::from_graphs(compounds);
    println!("compound library: {} molecules, {} bonds", db.len(), db.total_edges());

    let min_sup = db.abs_support(0.25);
    let gaston = Gaston::new().mine(&db, min_sup);
    let gspan = GSpan::new().mine(&db, min_sup);
    assert!(gaston.same_codes_and_supports(&gspan), "miners disagree");

    println!("{} substructures appear in >= 25% of molecules", gaston.len());

    // Concise summaries (CloseGraph / SPIN style post-processing).
    let closed = closed_patterns(&gaston);
    let maximal = maximal_patterns(&gaston);
    println!(
        "{} closed, {} maximal — the full set compresses {:.1}x losslessly",
        closed.len(),
        maximal.len(),
        gaston.len() as f64 / closed.len() as f64
    );

    // Named interpretation of a few headline substructures.
    let name = |p: &graphmine_graph::Pattern| -> String {
        let g = &p.graph;
        let atoms = |l| (0..g.vertex_count() as u32).filter(|&v| g.vlabel(v) == l).count();
        let aromatic = g.edges().filter(|&(_, _, _, el)| el == AROMATIC).count();
        if aromatic == 6 && g.vertex_count() == 6 {
            "benzene ring".into()
        } else if atoms(O) == 2 && g.edges().any(|(_, _, _, el)| el == DOUBLE) {
            "carboxyl-like group".into()
        } else if atoms(N) == 1 && g.edges().any(|(_, _, _, el)| el == DOUBLE) {
            "amide-like group".into()
        } else {
            format!("{} atoms / {} bonds", g.vertex_count(), p.size())
        }
    };

    let mut patterns: Vec<_> = gaston.iter().collect();
    patterns.sort_by(|a, b| b.size().cmp(&a.size()).then(b.support.cmp(&a.support)));
    println!("\nlargest frequent substructures:");
    for p in patterns.iter().take(8) {
        println!("  support {:>3}  {}", p.support, name(p));
    }
}
