//! Mining recurring transaction-network motifs — a financial-graph twist on
//! the paper's "graphs model arbitrary relations among objects" pitch. Each
//! graph is one account's weekly transaction neighbourhood; frequent
//! subgraphs across accounts are candidate *behavioural motifs*, and rings
//! (cycles through a merchant) are the interesting ones.
//!
//! Demonstrates the FSG miner and the closed-pattern summary.
//!
//! Run with: `cargo run --release --example fraud_rings`

use graphmine_graph::{Graph, GraphDb};
use graphmine_miner::{closed_patterns, Fsg, GSpan, MemoryMiner};

// Vertex labels: participant kinds.
const ACCOUNT: u32 = 0;
const MERCHANT: u32 = 1;
const MULE: u32 = 2;
// Edge labels: transfer bands.
const SMALL: u32 = 0;
const LARGE: u32 = 1;

/// An ordinary neighbourhood: the account pays a couple of merchants.
fn ordinary(seed: u32) -> Graph {
    let mut g = Graph::new();
    let me = g.add_vertex(ACCOUNT);
    for i in 0..2 + seed % 2 {
        let m = g.add_vertex(MERCHANT);
        g.add_edge(me, m, if (seed + i) % 3 == 0 { LARGE } else { SMALL }).unwrap();
    }
    g
}

/// A ring: money cycles through mule accounts back to the origin, with a
/// merchant attached for cover.
fn ring(seed: u32) -> Graph {
    let mut g = ordinary(seed);
    let me = 0;
    let m1 = g.add_vertex(MULE);
    let m2 = g.add_vertex(MULE);
    g.add_edge(me, m1, LARGE).unwrap();
    g.add_edge(m1, m2, LARGE).unwrap();
    g.add_edge(m2, me, LARGE).unwrap();
    g
}

fn main() {
    // 300 neighbourhoods, 12% of which carry the ring motif.
    let db: GraphDb = (0..300u32).map(|i| if i % 8 == 0 { ring(i) } else { ordinary(i) }).collect();
    println!("transaction neighbourhoods: {} graphs, {} transfers", db.len(), db.total_edges());

    // Motifs present in at least 10% of neighbourhoods.
    let sup = db.abs_support(0.10);
    let fsg = Fsg::new().mine(&db, sup);
    let gspan = GSpan::new().mine(&db, sup);
    assert!(fsg.same_codes_and_supports(&gspan), "FSG and gSpan agree");

    let closed = closed_patterns(&fsg);
    println!("{} frequent motifs, {} closed — reporting the closed ones:", fsg.len(), closed.len());
    let mut sorted: Vec<_> = closed.iter().collect();
    sorted.sort_by(|a, b| b.size().cmp(&a.size()).then(b.support.cmp(&a.support)));
    for p in &sorted {
        let g = &p.graph;
        let mules = (0..g.vertex_count() as u32).filter(|&v| g.vlabel(v) == MULE).count();
        let cyclic = g.edge_count() >= g.vertex_count();
        let tag = if cyclic && mules >= 2 { "  <-- RING: cycle through mule accounts" } else { "" };
        println!(
            "  support {:>4}  {} parties / {} transfers{}",
            p.support,
            g.vertex_count(),
            p.size(),
            tag
        );
    }

    // The planted ring must surface as a closed cyclic motif.
    let found_ring = closed.iter().any(|p| {
        p.graph.edge_count() >= p.graph.vertex_count()
            && (0..p.graph.vertex_count() as u32).filter(|&v| p.graph.vlabel(v) == MULE).count()
                >= 2
    });
    assert!(found_ring, "ring motif detected");
    println!("\nring motif detected in {:.0}% of neighbourhoods", 100.0 / 8.0);
}
