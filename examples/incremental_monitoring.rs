//! Continuous pattern monitoring under updates: compares the three
//! partitioning criteria of Section 5.1.1 (Partition1/2/3) and the ADIMINE
//! rebuild-everything baseline while an update stream plays, reporting how
//! much work each approach does per batch — a miniature of Fig. 13(b).
//!
//! Run with: `cargo run --release --example incremental_monitoring`

use std::time::Instant;

use graphmine_adimine::{AdiConfig, AdiMine};
use graphmine_core::{IncPartMiner, PartMiner, PartMinerConfig, PartitionerKind};
use graphmine_datagen::{
    generate, plan_updates, ufreq_from_updates, GenParams, UpdateKind, UpdateParams,
};
use graphmine_graph::update::apply_all;
use graphmine_partition::Criteria;

fn main() {
    let params = GenParams::new(300, 12, 8, 20, 4);
    let db = generate(&params);
    let min_sup = db.abs_support(0.06);
    println!("database {} | minsup {min_sup} (6%)\n", params.name());

    // One update batch, known in advance (the ufreq premise of Section 4.1).
    let upd_params = UpdateParams::new(0.4, 2, UpdateKind::Mixed, 8);
    let plan = plan_updates(&db, &upd_params);
    let ufreq = ufreq_from_updates(&db, &plan);
    let mut updated = db.clone();
    apply_all(&mut updated, &plan).unwrap();

    println!(
        "{:<12} {:>12} {:>14} {:>12} {:>10}",
        "approach", "init (ms)", "update (ms)", "remined", "patterns"
    );

    for (label, criteria) in [
        ("Partition1", Criteria::ISOLATE_UPDATES),
        ("Partition2", Criteria::MIN_CONNECTIVITY),
        ("Partition3", Criteria::COMBINED),
    ] {
        let mut cfg = PartMinerConfig::with_k(4);
        cfg.partitioner = PartitionerKind::GraphPart(criteria);
        let t = Instant::now();
        let outcome = PartMiner::new(cfg).mine(&db, &ufreq, min_sup);
        let init = t.elapsed();
        let mut state = outcome.state;
        let t = Instant::now();
        let inc = IncPartMiner::update(&mut state, &plan).unwrap();
        let upd = t.elapsed();
        println!(
            "{:<12} {:>12.1} {:>14.1} {:>9}/{} {:>10}",
            label,
            init.as_secs_f64() * 1e3,
            upd.as_secs_f64() * 1e3,
            inc.stats.units_remined,
            state.partition.unit_count(),
            inc.patterns.len(),
        );
    }

    // ADIMINE: rebuild the index and mine from scratch, with memory and
    // disk latency proportioned like the paper's machine (see the bench
    // crate's AdiHarness for the reasoning).
    let dir = tempfile_dir();
    let adi_config = AdiConfig {
        pool_pages: (db.len() / 60).max(4),
        decoded_cache: (db.len() / 4).max(16),
        io_latency: std::time::Duration::from_micros(20),
    };
    let t = Instant::now();
    let mut adi = AdiMine::build(&dir, &db, adi_config).unwrap();
    let base = adi.mine(min_sup).unwrap();
    let init = t.elapsed();
    let t = Instant::now();
    adi.rebuild(&updated).unwrap();
    let after = adi.mine(min_sup).unwrap();
    let upd = t.elapsed();
    println!(
        "{:<12} {:>12.1} {:>14.1} {:>12} {:>10}",
        "ADIMINE",
        init.as_secs_f64() * 1e3,
        upd.as_secs_f64() * 1e3,
        "full",
        after.len(),
    );
    let _ = base;
    std::fs::remove_dir_all(&dir).ok();
}

fn tempfile_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("graphmine-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}
