//! Quickstart: generate a synthetic graph database, mine it with PartMiner,
//! and print the frequent subgraphs.
//!
//! Run with: `cargo run --release --example quickstart`

use graphmine_core::{PartMiner, PartMinerConfig};
use graphmine_datagen::{generate, GenParams};

fn main() {
    // A small instance of the paper's generator: 500 graphs, ~10 edges
    // each, 8 labels, 20 planted kernels of ~4 edges (Table 1 notation:
    // D500T10N8L20I4).
    let params = GenParams::new(500, 10, 8, 20, 4);
    let db = generate(&params);
    println!("dataset {}: {} graphs, {} edges total", params.name(), db.len(), db.total_edges());

    // Static database: all update frequencies are zero.
    let ufreq: Vec<Vec<f64>> = db.iter().map(|(_, g)| vec![0.0; g.vertex_count()]).collect();

    // Mine at 5% minimum support with k = 2 units.
    let min_sup = db.abs_support(0.05);
    let miner = PartMiner::new(PartMinerConfig::with_k(2));
    let outcome = miner.mine(&db, &ufreq, min_sup);

    println!(
        "found {} frequent subgraphs at support >= {min_sup} ({} candidates, {} counted, {} via unit shortcut)",
        outcome.patterns.len(),
        outcome.stats.merge.candidates,
        outcome.stats.merge.counted,
        outcome.stats.merge.shortcut,
    );
    println!(
        "partition {:.1?} | units {:.1?} | merge {:.1?} | total {:.1?}",
        outcome.stats.partition_time,
        outcome.stats.unit_times,
        outcome.stats.merge_time,
        outcome.stats.wall,
    );

    // Show the five most frequent patterns, largest first on ties.
    let mut patterns: Vec<_> = outcome.patterns.iter().collect();
    patterns.sort_by(|a, b| b.support.cmp(&a.support).then(b.size().cmp(&a.size())));
    println!("\ntop patterns (DFS codes are (i, j, l_i, l_edge, l_j) tuples):");
    for p in patterns.iter().take(5) {
        println!(
            "  support {:>4}  {} vertices / {} edges  code: {}",
            p.support,
            p.graph.vertex_count(),
            p.size(),
            p.code
        );
    }
}
