//! The paper's motivating scenario (Section 1): spatiotemporal relationship
//! graphs that keep changing. Each graph models the proximity relationships
//! of one region; the static backbone (buildings along a road) never
//! changes, while the mobile objects (cars, pedestrians) are re-labeled and
//! re-linked on every tick. Because the update-prone vertices are known,
//! ufreq-aware partitioning (Partition3) isolates them into a single unit —
//! and IncPartMiner re-mines only that unit.
//!
//! Run with: `cargo run --release --example spatiotemporal`

use std::time::Instant;

use graphmine_core::{IncPartMiner, PartMiner, PartMinerConfig, PartitionerKind};
use graphmine_datagen::ufreq_from_updates;
use graphmine_graph::{DbUpdate, Graph, GraphDb, GraphUpdate};
use graphmine_miner::{GSpan, MemoryMiner};
use graphmine_partition::Criteria;

/// Object classes. Cars and pedestrians move; buildings never do.
const BUILDING: u32 = 0;
const ROAD: u32 = 1;
const CAR: u32 = 2;
const PEDESTRIAN: u32 = 3;
/// Proximity relations (edge labels).
const ADJACENT: u32 = 0;
const ON: u32 = 1;
const NEAR: u32 = 2;

/// Vertex ids 0..=4 are the static backbone; 5..=7 are the mobiles.
const MOBILES: [u32; 3] = [5, 6, 7];

/// One region: a road with four buildings, plus three mobile objects.
fn region(seed: u32) -> Graph {
    let mut g = Graph::new();
    let road = g.add_vertex(ROAD);
    let mut prev = None;
    for i in 0..4 {
        let b = g.add_vertex(BUILDING);
        g.add_edge(b, road, ADJACENT).unwrap();
        if let Some(p) = prev {
            if (seed + i) % 2 == 0 {
                g.add_edge(p, b, NEAR).unwrap();
            }
        }
        prev = Some(b);
    }
    for i in 0..3 {
        let c = g.add_vertex(if (seed + i) % 3 == 0 { PEDESTRIAN } else { CAR });
        g.add_edge(c, road, ON).unwrap();
        if i > 0 {
            g.add_edge(c, c - 1, NEAR).unwrap();
        }
    }
    g
}

/// The busy regions: 40% of the city sees movement every tick.
fn is_busy(gid: u32) -> bool {
    gid % 5 < 2
}

/// One tick of movement: in every busy region, one mobile changes class (a
/// car parks, a pedestrian boards a car), and in a few regions two mobiles
/// drift together, gaining a NEAR edge.
fn tick_updates(db: &GraphDb, tick: u32) -> Vec<DbUpdate> {
    let mut plan = Vec::new();
    for (gid, g) in db.iter() {
        if !is_busy(gid) {
            continue;
        }
        let m = MOBILES[(tick as usize + gid as usize) % MOBILES.len()];
        let new_label = if g.vlabel(m) == CAR { PEDESTRIAN } else { CAR };
        plan.push(DbUpdate { gid, update: GraphUpdate::RelabelVertex { v: m, label: new_label } });
        if gid % 7 == tick % 7 {
            let (a, b) = (MOBILES[tick as usize % 3], MOBILES[(tick as usize + 1) % 3]);
            if g.edge_between(a, b).is_none() {
                plan.push(DbUpdate {
                    gid,
                    update: GraphUpdate::AddEdge { u: a, v: b, label: NEAR },
                });
            }
        }
    }
    plan
}

fn main() {
    let db: GraphDb = (0..400).map(region).collect();
    println!("spatiotemporal database: {} regions, {} relationships", db.len(), db.total_edges());

    // The partitioner knows which vertices the workload hits (Section 4.1):
    // derive ufreq from a few ticks' worth of planned movement so every
    // mobile object registers as update-prone.
    let forecast: Vec<DbUpdate> = (0..3).flat_map(|t| tick_updates(&db, t)).collect();
    let ufreq = ufreq_from_updates(&db, &forecast);

    let min_sup = db.abs_support(0.08);
    let mut cfg = PartMinerConfig::with_k(4);
    cfg.partitioner = PartitionerKind::GraphPart(Criteria::COMBINED); // Partition3
    let outcome = PartMiner::new(cfg).mine(&db, &ufreq, min_sup);
    println!(
        "initial mining: {} frequent relationship patterns in {:.1?}",
        outcome.patterns.len(),
        outcome.stats.wall
    );
    let mut state = outcome.state;

    // Stream three ticks of movement.
    let mut current = db.clone();
    for tick in 0..3u32 {
        let plan = tick_updates(&current, tick);
        graphmine_graph::update::apply_all(&mut current, &plan).unwrap();

        let t = Instant::now();
        let inc = IncPartMiner::update(&mut state, &plan).unwrap();
        let inc_time = t.elapsed();

        let t = Instant::now();
        let direct = GSpan::new().mine(&current, min_sup);
        let direct_time = t.elapsed();

        assert!(inc.patterns.same_codes(&direct), "tick {tick} diverged");
        println!(
            "tick {tick}: {} updates -> re-mined {}/{} units, {} unchanged / {} newly frequent / {} demoted | incremental {:.1?} vs re-mine {:.1?}",
            plan.len(),
            inc.stats.units_remined,
            state.partition.unit_count(),
            inc.uf.len(),
            inc.if_new.len(),
            inc.fi.len(),
            inc_time,
            direct_time,
        );
    }
}
