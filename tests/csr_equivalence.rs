//! Differential proof that the frozen CSR representation is observationally
//! equivalent to the unfrozen adjacency-list representation: every miner ×
//! embedding-lists {off, on} × scheduling {serial, parallel} produces
//! identical pattern sets, identical per-pattern supporter gid lists, and
//! identical telemetry counter totals on a frozen database and its unfrozen
//! twin. A failure message carries the datagen parameters so the offending
//! database can be regenerated in isolation.

use graphmine_core::{PartMiner, PartMinerConfig};
use graphmine_datagen::{generate, GenParams};
use graphmine_graph::iso::SupportIndex;
use graphmine_graph::{EmbeddingMode, Graph, GraphDb};
use graphmine_miner::{Apriori, GSpan, Gaston, MemoryMiner};
use graphmine_telemetry::{Counters, Telemetry};

/// Rebuilds the unfrozen twin of a (frozen) database. Freezing repacks the
/// adjacency but leaves the vertex and edge arrays in insertion order, so
/// replaying them into fresh graphs reproduces the pre-freeze
/// representation exactly.
fn thaw(db: &GraphDb) -> GraphDb {
    GraphDb::from_graphs_unfrozen(
        db.iter()
            .map(|(_, g)| {
                let mut t = Graph::with_capacity(g.vertex_count(), g.edge_count());
                for v in 0..g.vertex_count() as u32 {
                    t.add_vertex(g.vlabel(v));
                }
                for (_, u, v, el) in g.edges() {
                    t.add_edge(u, v, el).expect("replayed edge is fresh");
                }
                t
            })
            .collect(),
    )
}

/// Sorted counter snapshot for exact comparison across representations.
fn counter_totals(tel: &Telemetry) -> Vec<(&'static str, u64)> {
    let mut snap = tel.counters().snapshot();
    snap.sort_unstable();
    snap
}

#[test]
fn csr_matrix_is_equivalent_before_and_after_freeze() {
    for seed in [5u64, 271, 1117] {
        let params = GenParams::new(36, 8, 5, 12, 3).with_seed(seed);
        let frozen = generate(&params);
        let thawed = thaw(&frozen);
        let repro = format!(
            "repro: let db = generate(&GenParams::new(36, 8, 5, 12, 3).with_seed({seed}));"
        );

        // The twin is the same labeled graph sequence in the other repr.
        for ((_, f), (_, t)) in frozen.iter().zip(thawed.iter()) {
            assert!(f.is_frozen() && !t.is_frozen(), "twin reprs mixed up — {repro}");
            assert_eq!(f, t, "thawed twin diverged — {repro}");
        }

        let ufreq: Vec<Vec<f64>> =
            frozen.iter().map(|(_, g)| vec![0.0; g.vertex_count()]).collect();
        let sup = frozen.abs_support(0.15);
        let reference = GSpan::new().mine(&frozen, sup);

        for (rep, db) in [("frozen", &frozen), ("unfrozen", &thawed)] {
            let gspan = GSpan::new().mine(db, sup);
            assert!(
                gspan.same_codes_and_supports(&reference),
                "gSpan on {rep} db vs frozen reference: {} vs {} — {repro}",
                gspan.len(),
                reference.len()
            );
            let gaston = Gaston::new().mine(db, sup);
            assert!(
                gaston.same_codes_and_supports(&reference),
                "Gaston on {rep} db: {} vs {} — {repro}",
                gaston.len(),
                reference.len()
            );
            for lists in [EmbeddingMode::Off, EmbeddingMode::On] {
                let apriori = Apriori { max_edges: None, embedding_lists: lists }.mine(db, sup);
                assert!(
                    apriori.same_codes_and_supports(&reference),
                    "Apriori (lists {lists}) on {rep} db: {} vs {} — {repro}",
                    apriori.len(),
                    reference.len()
                );
                for parallel in [false, true] {
                    let mut cfg = PartMinerConfig::with_k(2);
                    cfg.exact_supports = true;
                    cfg.parallel = parallel;
                    cfg.embedding_lists = lists;
                    let pm = PartMiner::new(cfg).mine(db, &ufreq, sup);
                    assert!(
                        pm.patterns.same_codes_and_supports(&reference),
                        "PartMiner (lists {lists}, parallel {parallel}) on {rep} db: \
                         {} vs {} — {repro}",
                        pm.patterns.len(),
                        reference.len()
                    );
                }
            }
        }

        // Supporter gid lists: the exact supporting-graph list of every
        // frequent pattern must be identical (same gids, same ascending
        // order) under both representations.
        let idx_f = SupportIndex::build(&frozen);
        let idx_t = SupportIndex::build(&thawed);
        for p in reference.iter() {
            let (sf, gf) = idx_f.support_all_counted(&frozen, &p.code, sup, Counters::noop());
            let (st, gt) = idx_t.support_all_counted(&thawed, &p.code, sup, Counters::noop());
            assert_eq!((sf, &gf), (st, &gt), "supporters of {} diverged — {repro}", p.code);
            assert_eq!(sf, p.support, "recount of {} disagrees with gSpan — {repro}", p.code);
            assert!(gf.windows(2).all(|w| w[0] < w[1]), "gid list not ascending — {repro}");
        }
    }
}

/// Telemetry totals are representation-independent: the engines may scan
/// runs in a different order on the two reprs, but every counted event —
/// searches run and avoided, embeddings extended and spilled, isomorphism
/// tests — happens the same number of times.
#[test]
fn csr_telemetry_counters_are_identical_across_reprs() {
    let params = GenParams::new(30, 8, 5, 12, 3).with_seed(271);
    let frozen = generate(&params);
    let thawed = thaw(&frozen);
    let ufreq: Vec<Vec<f64>> = frozen.iter().map(|(_, g)| vec![0.0; g.vertex_count()]).collect();
    let sup = frozen.abs_support(0.15);
    let repro =
        "repro: let db = generate(&GenParams::new(30, 8, 5, 12, 3).with_seed(271));".to_string();

    for lists in [EmbeddingMode::Off, EmbeddingMode::On] {
        let totals: Vec<_> = [&frozen, &thawed]
            .iter()
            .map(|db| {
                let tel = Telemetry::new();
                Apriori { max_edges: Some(4), embedding_lists: lists }.mine_counted(
                    db,
                    sup,
                    tel.counters(),
                );
                counter_totals(&tel)
            })
            .collect();
        assert_eq!(totals[0], totals[1], "Apriori (lists {lists}) counters diverged — {repro}");

        for parallel in [false, true] {
            let totals: Vec<_> = [&frozen, &thawed]
                .iter()
                .map(|db| {
                    let tel = Telemetry::new();
                    let mut cfg = PartMinerConfig::with_k(2);
                    cfg.exact_supports = true;
                    cfg.parallel = parallel;
                    cfg.embedding_lists = lists;
                    PartMiner::new(cfg).mine_instrumented(db, &ufreq, sup, &tel);
                    counter_totals(&tel)
                })
                .collect();
            assert_eq!(
                totals[0], totals[1],
                "PartMiner (lists {lists}, parallel {parallel}) counters diverged — {repro}"
            );
        }
    }
}
