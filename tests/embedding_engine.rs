//! Acceptance test for the embedding-list support engine: the run report of
//! a lists-on PartMiner run must show real work moved off the backtracking
//! search — `search_calls_avoided > 0` and at least a 2× drop in actual
//! search invocations against the identical lists-off run — while mining
//! the exact same pattern set.

use graphmine_core::{PartMiner, PartMinerConfig};
use graphmine_datagen::{generate, GenParams};
use graphmine_graph::{EmbeddingMode, PatternSet};
use graphmine_telemetry::{Counter, RunReport, Telemetry};

fn run(mode: EmbeddingMode) -> (PatternSet, RunReport) {
    let db = generate(&GenParams::new(60, 10, 5, 15, 4).with_seed(11));
    let ufreq: Vec<Vec<f64>> = db.iter().map(|(_, g)| vec![0.0; g.vertex_count()]).collect();
    let sup = db.abs_support(0.10);
    let mut cfg = PartMinerConfig::with_k(2);
    cfg.exact_supports = true;
    cfg.embedding_lists = mode;
    let tel = Telemetry::new();
    let outcome = PartMiner::new(cfg).mine_instrumented(&db, &ufreq, sup, &tel);
    // Round-trip through the serialized report: the counters asserted on
    // below are exactly what `mine --report` writes to disk.
    let report = RunReport::from_json(&RunReport::capture("partminer", &tel).to_json()).unwrap();
    (outcome.patterns, report)
}

#[test]
fn embedding_lists_replace_most_searches() {
    let (patterns_off, off) = run(EmbeddingMode::Off);
    let (patterns_on, on) = run(EmbeddingMode::On);

    // Counting strategy must not change the answer.
    assert!(
        patterns_on.same_codes_and_supports(&patterns_off),
        "lists on mined {} patterns, lists off {}",
        patterns_on.len(),
        patterns_off.len()
    );
    assert!(!patterns_on.is_empty(), "degenerate run: no frequent patterns");

    // Lists-off never answers a merge-join count from a list. (The unit
    // miners still report `embeddings_extended` — their projected lists
    // exist in every mode — so only the avoidance counter must be zero.)
    assert_eq!(off.counter(Counter::SearchCallsAvoided), 0);

    // Lists-on actually worked: the store built more rows than the unit
    // miners alone and answered queries that would otherwise have been
    // per-graph searches.
    assert!(
        on.counter(Counter::EmbeddingsExtended) > off.counter(Counter::EmbeddingsExtended),
        "the store built no embedding rows of its own"
    );
    assert!(on.counter(Counter::SearchCallsAvoided) > 0, "no search calls were avoided");

    // The headline: total search invocations drop at least 2x.
    let searches_off = off.counter(Counter::SearchCalls);
    let searches_on = on.counter(Counter::SearchCalls);
    assert!(searches_off > 0, "lists-off run never searched — test db too small");
    assert!(
        searches_on * 2 <= searches_off,
        "search calls only dropped from {searches_off} to {searches_on} (< 2x)"
    );
}
