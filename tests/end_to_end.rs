//! End-to-end scenario: the full dynamic-mining lifecycle the paper
//! motivates — generate, partition, mine, stream several update batches,
//! and keep PartMiner/IncPartMiner/ADIMINE consistent throughout.

use graphmine_adimine::{AdiConfig, AdiMine};
use graphmine_core::{IncPartMiner, PartMiner, PartMinerConfig};
use graphmine_datagen::{
    generate, plan_updates, ufreq_from_updates, GenParams, UpdateKind, UpdateParams,
};
use graphmine_graph::update::apply_all;
use graphmine_miner::{GSpan, MemoryMiner};

#[test]
fn dynamic_lifecycle_stays_consistent_across_batches() {
    let db0 = generate(&GenParams::new(40, 8, 4, 8, 3));
    let sup = db0.abs_support(0.15);

    // Plan three successive update batches against the evolving database.
    let mut mirror = db0.clone();
    let mut batches = Vec::new();
    for round in 0..3u64 {
        let params = UpdateParams::new(0.3, 2, UpdateKind::Mixed, 4).with_seed(round * 7919 + 13);
        let plan = plan_updates(&mirror, &params);
        apply_all(&mut mirror, &plan).unwrap();
        batches.push(plan);
    }
    // ufreq from the first batch (what the partitioner can know up front).
    let ufreq = ufreq_from_updates(&db0, &batches[0]);

    // Initial mining.
    let mut cfg = PartMinerConfig::with_k(3);
    cfg.exact_supports = true;
    let outcome = PartMiner::new(cfg).mine(&db0, &ufreq, sup);
    let mut state = outcome.state;

    // ADIMINE lives beside it and is fully rebuilt per batch.
    let dir = tempfile::tempdir().unwrap();
    let mut adi = AdiMine::build(dir.path(), &db0, AdiConfig::default()).unwrap();

    let mut current = db0.clone();
    for (round, plan) in batches.iter().enumerate() {
        apply_all(&mut current, plan).unwrap();
        let inc = IncPartMiner::update(&mut state, plan).unwrap();

        let direct = GSpan::new().mine(&current, sup);
        assert!(
            inc.patterns.same_codes_and_supports(&direct),
            "round {round}: incremental diverged"
        );

        adi.rebuild(&current).unwrap();
        let disk = adi.mine(sup).unwrap();
        assert!(disk.same_codes_and_supports(&direct), "round {round}: ADIMINE diverged");

        // The incremental round touched strictly fewer units than exist
        // whenever the batch leaves some unit's pieces untouched.
        assert!(inc.stats.units_remined <= state.partition.unit_count());
    }
}

#[test]
fn quickstart_api_surface() {
    // The README's quickstart, as a test: mine, inspect, update, re-mine.
    let db = generate(&GenParams::new(30, 6, 4, 6, 3));
    let ufreq: Vec<Vec<f64>> = db.iter().map(|(_, g)| vec![0.0; g.vertex_count()]).collect();
    let sup = db.abs_support(0.2);

    let outcome = PartMiner::new(PartMinerConfig::with_k(2)).mine(&db, &ufreq, sup);
    assert!(!outcome.patterns.is_empty());
    for p in outcome.patterns.iter() {
        assert!(p.support >= sup);
        assert!(p.graph.is_connected());
        assert_eq!(p.graph.edge_count(), p.size());
    }

    let mut state = outcome.state;
    let plan = plan_updates(&db, &UpdateParams::new(0.2, 1, UpdateKind::Relabel, 4));
    let inc = IncPartMiner::update(&mut state, &plan).unwrap();
    // The three classes partition the world.
    assert_eq!(inc.uf.len() + inc.if_new.len(), inc.patterns.len());
}
