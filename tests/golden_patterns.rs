//! Golden regression: frequent-pattern sets pinned as files under
//! `tests/golden/`. Any change to canonical forms, support counting, or the
//! embedding-list engine that alters a mined pattern set fails here with a
//! concrete diff target.
//!
//! To re-bless after an intentional change:
//! `GOLDEN_BLESS=1 cargo test -p graphmine-core --test golden_patterns`

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::PathBuf;

use graphmine_datagen::{generate, GenParams};
use graphmine_graph::{pattern_io, Graph, GraphDb, PatternSet};
use graphmine_miner::{GSpan, MemoryMiner};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden").join(name)
}

fn check_golden(name: &str, mined: &PatternSet) {
    let path = golden_path(name);
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        let f = File::create(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        pattern_io::write_patterns(BufWriter::new(f), mined).unwrap();
        return;
    }
    let f = File::open(&path).unwrap_or_else(|e| {
        panic!("{}: {e} — run with GOLDEN_BLESS=1 to create it", path.display())
    });
    let golden = pattern_io::read_patterns(BufReader::new(f)).unwrap();
    assert!(
        mined.same_codes_and_supports(&golden),
        "{name}: mined {} patterns, golden {} — canonical forms or support \
         counting changed; inspect with `graphmine diff`, re-bless with \
         GOLDEN_BLESS=1 only if the change is intended",
        mined.len(),
        golden.len()
    );
}

/// The labeled graph of the paper's Fig. 1 (the running example `G`).
fn fig1_graph() -> Graph {
    let mut g = Graph::new();
    let v0 = g.add_vertex(0);
    let v1 = g.add_vertex(0);
    let v2 = g.add_vertex(1);
    let v3 = g.add_vertex(2);
    g.add_edge(v0, v1, 0).unwrap();
    g.add_edge(v1, v2, 0).unwrap();
    g.add_edge(v1, v3, 2).unwrap();
    g.add_edge(v3, v0, 1).unwrap();
    g
}

#[test]
fn fig1_example_patterns_are_pinned() {
    let db = GraphDb::from_graphs(vec![fig1_graph()]);
    // Support 1 on a single graph: every connected subgraph, canonical.
    let mined = GSpan::new().mine(&db, 1);
    check_golden("fig1.patterns", &mined);
}

#[test]
fn synthetic_seed7_patterns_are_pinned() {
    let db = generate(&GenParams::new(40, 8, 5, 12, 3).with_seed(7));
    let sup = db.abs_support(0.2);
    let mined = GSpan::new().mine(&db, sup);
    assert!(!mined.is_empty(), "degenerate golden input: no frequent patterns");
    check_golden("synthetic_d40_seed7.patterns", &mined);
}
