//! Integration: IncPartMiner against full recomputation, on the paper's
//! update workloads (Section 5's three update types, 20%–80% amounts).

use graphmine_core::{IncPartMiner, PartMiner, PartMinerConfig};
use graphmine_datagen::{
    generate, plan_updates, ufreq_from_updates, GenParams, UpdateKind, UpdateParams,
};
use graphmine_graph::update::apply_all;
use graphmine_graph::GraphDb;
use graphmine_miner::{GSpan, MemoryMiner};

fn synthetic_db() -> GraphDb {
    generate(&GenParams::new(40, 8, 4, 8, 3))
}

fn run_workload(kind: UpdateKind, fraction: f64) {
    let db = synthetic_db();
    let params = UpdateParams::new(fraction, 2, kind, 4);
    let plan = plan_updates(&db, &params);
    let ufreq = ufreq_from_updates(&db, &plan);
    let sup = db.abs_support(0.15);

    let mut cfg = PartMinerConfig::with_k(3);
    cfg.exact_supports = true;
    let outcome = PartMiner::new(cfg).mine(&db, &ufreq, sup);
    let old = outcome.patterns.clone();
    let mut state = outcome.state;

    let inc = IncPartMiner::update(&mut state, &plan).unwrap();

    let mut db2 = db.clone();
    apply_all(&mut db2, &plan).unwrap();
    let direct = GSpan::new().mine(&db2, sup);

    assert!(
        inc.patterns.same_codes_and_supports(&direct),
        "{kind:?} {fraction}: incremental {} vs direct {}",
        inc.patterns.len(),
        direct.len()
    );

    // Classification semantics.
    for p in inc.if_new.iter() {
        assert!(!old.contains(&p.code) && direct.contains(&p.code));
    }
    for p in inc.fi.iter() {
        assert!(old.contains(&p.code) && !direct.contains(&p.code));
    }
    for p in inc.uf.iter() {
        assert!(old.contains(&p.code) && direct.contains(&p.code));
    }
    assert_eq!(inc.uf.len() + inc.if_new.len(), direct.len());
}

#[test]
fn relabel_workload_20pct() {
    run_workload(UpdateKind::Relabel, 0.2);
}

#[test]
fn relabel_workload_80pct() {
    run_workload(UpdateKind::Relabel, 0.8);
}

#[test]
fn add_structure_workload_20pct() {
    run_workload(UpdateKind::AddStructure, 0.2);
}

#[test]
fn add_structure_workload_80pct() {
    run_workload(UpdateKind::AddStructure, 0.8);
}

#[test]
fn mixed_workload_50pct() {
    run_workload(UpdateKind::Mixed, 0.5);
}

#[test]
fn incremental_work_scales_with_update_amount() {
    let db = synthetic_db();
    let sup = db.abs_support(0.15);
    let mut remined = Vec::new();
    for fraction in [0.2, 0.8] {
        let params = UpdateParams::new(fraction, 2, UpdateKind::Relabel, 4);
        let plan = plan_updates(&db, &params);
        let ufreq = ufreq_from_updates(&db, &plan);
        let mut cfg = PartMinerConfig::with_k(4);
        cfg.exact_supports = true;
        let outcome = PartMiner::new(cfg).mine(&db, &ufreq, sup);
        let mut state = outcome.state;
        let inc = IncPartMiner::update(&mut state, &plan).unwrap();
        remined.push(inc.stats.units_remined);
    }
    assert!(remined[0] <= remined[1], "more updates should not touch fewer units: {remined:?}");
}

#[test]
fn ufreq_aware_partitioning_localises_updates() {
    // With Partition3 (ufreq + connectivity), the number of touched units
    // for the planned workload should be no worse than with Partition2
    // (connectivity only), which is the paper's Fig. 13(b) story.
    use graphmine_core::PartitionerKind;
    use graphmine_partition::Criteria;

    let db = synthetic_db();
    let params = UpdateParams::new(0.3, 2, UpdateKind::Relabel, 4);
    let plan = plan_updates(&db, &params);
    let ufreq = ufreq_from_updates(&db, &plan);
    let sup = db.abs_support(0.15);

    let touched_units = |criteria: Criteria| -> usize {
        let mut cfg = PartMinerConfig::with_k(4);
        cfg.partitioner = PartitionerKind::GraphPart(criteria);
        cfg.exact_supports = true;
        let outcome = PartMiner::new(cfg).mine(&db, &ufreq, sup);
        let mut state = outcome.state;
        let inc = IncPartMiner::update(&mut state, &plan).unwrap();
        inc.stats.units_remined
    };

    let with_ufreq = touched_units(Criteria::COMBINED);
    let connectivity_only = touched_units(Criteria::MIN_CONNECTIVITY);
    assert!(
        with_ufreq <= connectivity_only + 1,
        "Partition3 touched {with_ufreq}, Partition2 touched {connectivity_only}"
    );
}
