//! Integration: the lossless-recovery claims of Theorems 1–3.
//!
//! * The partition tree reassembles every graph exactly (Theorem 1's
//!   structural premise);
//! * PartMiner's merge-join recovers precisely the frequent-pattern set of
//!   direct mining, for every partitioner, criteria setting, and unit count
//!   the paper evaluates (Theorem 3).

use graphmine_core::{JoinPolicy, PartMiner, PartMinerConfig, PartitionerKind};
use graphmine_datagen::{
    generate, plan_updates, ufreq_from_updates, GenParams, UpdateKind, UpdateParams,
};
use graphmine_graph::GraphDb;
use graphmine_miner::{GSpan, MemoryMiner};
use graphmine_partition::{Criteria, DbPartition, GraphPart, MetisLike};

fn synthetic_db() -> GraphDb {
    generate(&GenParams::new(50, 9, 4, 8, 3))
}

fn zero_ufreq(db: &GraphDb) -> Vec<Vec<f64>> {
    db.iter().map(|(_, g)| vec![0.0; g.vertex_count()]).collect()
}

#[test]
fn partition_tree_recovers_graphs_for_every_partitioner() {
    let db = synthetic_db();
    let uf = zero_ufreq(&db);
    let partitioners: Vec<Box<dyn graphmine_partition::Bipartitioner>> = vec![
        Box::new(GraphPart::new(Criteria::ISOLATE_UPDATES)),
        Box::new(GraphPart::new(Criteria::MIN_CONNECTIVITY)),
        Box::new(GraphPart::new(Criteria::COMBINED)),
        Box::new(MetisLike),
    ];
    for p in &partitioners {
        for k in [2, 3, 5] {
            let part = DbPartition::build(&db, &uf, p.as_ref(), k);
            for gid in 0..db.len() as u32 {
                let rec = part.recovered_graph(gid);
                let orig = db.graph(gid);
                assert_eq!(rec.edge_count(), orig.edge_count(), "{} k={k} gid={gid}", p.name());
                for (e, u, v, el) in orig.edges() {
                    assert_eq!(rec.edge(e), (u, v, el), "{} k={k} gid={gid}", p.name());
                }
            }
        }
    }
}

#[test]
fn merge_join_is_lossless_for_all_criteria_and_k() {
    let db = synthetic_db();
    let sup = db.abs_support(0.15);
    let reference = GSpan::new().mine(&db, sup);

    // A realistic ufreq (from a planned update workload) exercises the
    // update-aware criteria.
    let plan = plan_updates(&db, &UpdateParams::new(0.4, 2, UpdateKind::Mixed, 4));
    let ufreq = ufreq_from_updates(&db, &plan);

    let settings = [
        PartitionerKind::GraphPart(Criteria::ISOLATE_UPDATES),
        PartitionerKind::GraphPart(Criteria::MIN_CONNECTIVITY),
        PartitionerKind::GraphPart(Criteria::COMBINED),
        PartitionerKind::Metis,
    ];
    for partitioner in settings {
        for k in [2usize, 3, 6] {
            let mut cfg = PartMinerConfig::with_k(k);
            cfg.partitioner = partitioner;
            cfg.exact_supports = true;
            let outcome = PartMiner::new(cfg).mine(&db, &ufreq, sup);
            assert!(
                outcome.patterns.same_codes_and_supports(&reference),
                "{} k={k}: {} vs {}",
                partitioner.name(),
                outcome.patterns.len(),
                reference.len()
            );
        }
    }
}

#[test]
fn paper_join_policy_is_sound_and_near_complete() {
    let db = synthetic_db();
    let sup = db.abs_support(0.15);
    let reference = GSpan::new().mine(&db, sup);
    let uf = zero_ufreq(&db);
    let mut cfg = PartMinerConfig::with_k(2);
    cfg.join_policy = JoinPolicy::Paper;
    cfg.exact_supports = true;
    let outcome = PartMiner::new(cfg).mine(&db, &uf, sup);
    // Soundness: everything reported is genuinely frequent with the right
    // support.
    for p in outcome.patterns.iter() {
        assert_eq!(reference.support(&p.code), Some(p.support), "{}", p.code);
    }
    // The paper policy may miss cross-only patterns, but must find at least
    // all single edges and the overwhelming majority of the set.
    assert!(
        outcome.patterns.len() * 10 >= reference.len() * 9,
        "paper policy recovered {} of {}",
        outcome.patterns.len(),
        reference.len()
    );
}

#[test]
fn shortcut_supports_are_sound_lower_bounds() {
    let db = synthetic_db();
    let sup = db.abs_support(0.15);
    let reference = GSpan::new().mine(&db, sup);
    let uf = zero_ufreq(&db);
    let cfg = PartMinerConfig::with_k(4); // shortcut on by default
    let outcome = PartMiner::new(cfg).mine(&db, &uf, sup);
    assert!(outcome.patterns.same_codes(&reference));
    for p in outcome.patterns.iter() {
        let exact = reference.support(&p.code).unwrap();
        assert!(p.support >= sup, "{}", p.code);
        assert!(p.support <= exact, "{}: claimed {} > exact {exact}", p.code, p.support);
    }
}
