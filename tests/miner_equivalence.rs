//! Integration: every miner in the workspace — gSpan, Gaston, Apriori,
//! disk-based ADIMINE, and PartMiner for several k — produces the same
//! frequent-pattern sets on synthetic databases from the paper's generator.

use graphmine_adimine::{AdiConfig, AdiMine};
use graphmine_core::{PartMiner, PartMinerConfig};
use graphmine_datagen::{generate, GenParams};
use graphmine_graph::{EmbeddingMode, GraphDb};
use graphmine_miner::{Apriori, GSpan, Gaston, MemoryMiner};

fn synthetic_db() -> GraphDb {
    generate(&GenParams::new(60, 8, 5, 10, 3))
}

#[test]
fn all_systems_agree_on_synthetic_data() {
    let db = synthetic_db();
    let ufreq: Vec<Vec<f64>> = db.iter().map(|(_, g)| vec![0.0; g.vertex_count()]).collect();

    for rel_sup in [0.10, 0.25] {
        let sup = db.abs_support(rel_sup);
        let reference = GSpan::new().mine(&db, sup);

        let gaston = Gaston::new().mine(&db, sup);
        assert!(
            gaston.same_codes_and_supports(&reference),
            "Gaston vs gSpan at {rel_sup}: {} vs {}",
            gaston.len(),
            reference.len()
        );

        let apriori = Apriori::new().mine(&db, sup);
        assert!(apriori.same_codes_and_supports(&reference), "Apriori vs gSpan at {rel_sup}");

        let dir = tempfile::tempdir().unwrap();
        let adi = AdiMine::build(dir.path(), &db, AdiConfig::default()).unwrap();
        let disk = adi.mine(sup).unwrap();
        assert!(disk.same_codes_and_supports(&reference), "ADIMINE vs gSpan at {rel_sup}");

        for k in [2usize, 4] {
            let mut cfg = PartMinerConfig::with_k(k);
            cfg.exact_supports = true;
            let pm = PartMiner::new(cfg).mine(&db, &ufreq, sup);
            assert!(
                pm.patterns.same_codes_and_supports(&reference),
                "PartMiner k={k} vs gSpan at {rel_sup}: {} vs {}",
                pm.patterns.len(),
                reference.len()
            );
        }
    }
}

/// Differential matrix for the embedding-list support engine: every
/// counting configuration — embedding lists {off, on} × merge scheduling
/// {serial, parallel} — must produce the exact pattern sets and supports of
/// the reference miner, across several randomized databases. A failure
/// message carries the datagen parameters so the offending database can be
/// regenerated in isolation.
#[test]
fn embedding_list_matrix_is_exact() {
    for seed in [3u64, 41, 977] {
        let params = GenParams::new(40, 8, 5, 12, 3).with_seed(seed);
        let db = generate(&params);
        let ufreq: Vec<Vec<f64>> = db.iter().map(|(_, g)| vec![0.0; g.vertex_count()]).collect();
        let sup = db.abs_support(0.15);
        let reference = GSpan::new().mine(&db, sup);
        let repro = format!(
            "repro: let db = generate(&GenParams::new(40, 8, 5, 12, 3).with_seed({seed})); \
             let sup = {sup};"
        );

        let gaston = Gaston::new().mine(&db, sup);
        assert!(gaston.same_codes_and_supports(&reference), "Gaston vs gSpan — {repro}");

        for lists in [EmbeddingMode::Off, EmbeddingMode::On] {
            let apriori = Apriori { max_edges: None, embedding_lists: lists }.mine(&db, sup);
            assert!(
                apriori.same_codes_and_supports(&reference),
                "Apriori (lists {lists}) vs gSpan: {} vs {} — {repro}",
                apriori.len(),
                reference.len()
            );

            for parallel in [false, true] {
                for exact in [false, true] {
                    let mut cfg = PartMinerConfig::with_k(2);
                    cfg.exact_supports = exact;
                    cfg.parallel = parallel;
                    cfg.embedding_lists = lists;
                    let pm = PartMiner::new(cfg).mine(&db, &ufreq, sup);
                    let same = if exact {
                        pm.patterns.same_codes_and_supports(&reference)
                    } else {
                        pm.patterns.same_codes(&reference)
                    };
                    assert!(
                        same,
                        "PartMiner (lists {lists}, parallel {parallel}, exact {exact}) \
                         vs gSpan: {} vs {} — {repro}",
                        pm.patterns.len(),
                        reference.len()
                    );
                }
            }
        }
    }
}

#[test]
fn miners_agree_at_low_support_with_cap() {
    // Lower support explodes the pattern count; cap sizes to keep the
    // comparison tractable while still crossing into cyclic patterns.
    let db = synthetic_db();
    let sup = db.abs_support(0.05);
    let reference = GSpan::capped(5).mine(&db, sup);
    let gaston = Gaston::capped(5).mine(&db, sup);
    assert!(gaston.same_codes_and_supports(&reference));
    let dir = tempfile::tempdir().unwrap();
    let adi = AdiMine::build(dir.path(), &db, AdiConfig::default()).unwrap();
    let disk = adi.mine_capped(sup, Some(5)).unwrap();
    assert!(disk.same_codes_and_supports(&reference));
}

/// Support boundaries: `min_support = 1` (everything connected up to the
/// cap is frequent), `= |D|` (only patterns occurring in every graph) and
/// `= |D| + 1` (the empty set — not a panic), across the miner ×
/// embedding-list × scheduling matrix.
#[test]
fn support_boundaries_across_the_miner_matrix() {
    let params = GenParams::new(8, 5, 4, 6, 3).with_seed(99);
    let db = generate(&params);
    let ufreq: Vec<Vec<f64>> = db.iter().map(|(_, g)| vec![0.0; g.vertex_count()]).collect();
    let cap = 4;
    let d = db.len() as u32;

    for sup in [1, d, d + 1] {
        let reference = GSpan::capped(cap).mine(&db, sup);
        let repro = format!(
            "repro: let db = generate(&GenParams::new(8, 5, 4, 6, 3).with_seed(99)); \
             let sup = {sup}; let cap = {cap};"
        );
        if sup == 1 {
            assert!(!reference.is_empty(), "support 1 finds every edge — {repro}");
        }
        if sup > d {
            assert!(reference.is_empty(), "support above |D| must yield the empty set — {repro}");
        }
        for p in reference.iter() {
            assert!(p.support >= sup, "reported support below threshold — {repro}");
        }

        let gaston = Gaston::capped(cap).mine(&db, sup);
        assert!(gaston.same_codes_and_supports(&reference), "Gaston at sup {sup} — {repro}");

        for lists in [EmbeddingMode::Off, EmbeddingMode::On] {
            let apriori = Apriori { max_edges: Some(cap), embedding_lists: lists }.mine(&db, sup);
            assert!(
                apriori.same_codes_and_supports(&reference),
                "Apriori (lists {lists}) at sup {sup}: {} vs {} — {repro}",
                apriori.len(),
                reference.len()
            );

            for k in [2usize, 3, 4] {
                for parallel in [false, true] {
                    let mut cfg = PartMinerConfig::with_k(k);
                    cfg.exact_supports = true;
                    cfg.max_edges = Some(cap);
                    cfg.parallel = parallel;
                    cfg.embedding_lists = lists;
                    let pm = PartMiner::new(cfg).mine(&db, &ufreq, sup);
                    assert!(
                        pm.patterns.same_codes_and_supports(&reference),
                        "PartMiner (k={k}, lists {lists}, parallel {parallel}) at sup {sup}: \
                         {} vs {} — {repro}",
                        pm.patterns.len(),
                        reference.len()
                    );
                }
            }
        }
    }
}

#[test]
fn pattern_supports_shrink_as_threshold_rises() {
    let db = synthetic_db();
    let lo = GSpan::new().mine(&db, db.abs_support(0.05));
    let hi = GSpan::new().mine(&db, db.abs_support(0.30));
    assert!(hi.len() < lo.len(), "{} !< {}", hi.len(), lo.len());
    for p in hi.iter() {
        assert_eq!(lo.support(&p.code), Some(p.support));
    }
}
