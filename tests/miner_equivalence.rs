//! Integration: every miner in the workspace — gSpan, Gaston, Apriori,
//! disk-based ADIMINE, and PartMiner for several k — produces the same
//! frequent-pattern sets on synthetic databases from the paper's generator.

use graphmine_adimine::{AdiConfig, AdiMine};
use graphmine_core::{PartMiner, PartMinerConfig};
use graphmine_datagen::{generate, GenParams};
use graphmine_graph::GraphDb;
use graphmine_miner::{Apriori, GSpan, Gaston, MemoryMiner};

fn synthetic_db() -> GraphDb {
    generate(&GenParams::new(60, 8, 5, 10, 3))
}

#[test]
fn all_systems_agree_on_synthetic_data() {
    let db = synthetic_db();
    let ufreq: Vec<Vec<f64>> = db.iter().map(|(_, g)| vec![0.0; g.vertex_count()]).collect();

    for rel_sup in [0.10, 0.25] {
        let sup = db.abs_support(rel_sup);
        let reference = GSpan::new().mine(&db, sup);

        let gaston = Gaston::new().mine(&db, sup);
        assert!(
            gaston.same_codes_and_supports(&reference),
            "Gaston vs gSpan at {rel_sup}: {} vs {}",
            gaston.len(),
            reference.len()
        );

        let apriori = Apriori::new().mine(&db, sup);
        assert!(apriori.same_codes_and_supports(&reference), "Apriori vs gSpan at {rel_sup}");

        let dir = tempfile::tempdir().unwrap();
        let adi = AdiMine::build(dir.path(), &db, AdiConfig::default()).unwrap();
        let disk = adi.mine(sup).unwrap();
        assert!(disk.same_codes_and_supports(&reference), "ADIMINE vs gSpan at {rel_sup}");

        for k in [2usize, 4] {
            let mut cfg = PartMinerConfig::with_k(k);
            cfg.exact_supports = true;
            let pm = PartMiner::new(cfg).mine(&db, &ufreq, sup);
            assert!(
                pm.patterns.same_codes_and_supports(&reference),
                "PartMiner k={k} vs gSpan at {rel_sup}: {} vs {}",
                pm.patterns.len(),
                reference.len()
            );
        }
    }
}

#[test]
fn miners_agree_at_low_support_with_cap() {
    // Lower support explodes the pattern count; cap sizes to keep the
    // comparison tractable while still crossing into cyclic patterns.
    let db = synthetic_db();
    let sup = db.abs_support(0.05);
    let reference = GSpan::capped(5).mine(&db, sup);
    let gaston = Gaston::capped(5).mine(&db, sup);
    assert!(gaston.same_codes_and_supports(&reference));
    let dir = tempfile::tempdir().unwrap();
    let adi = AdiMine::build(dir.path(), &db, AdiConfig::default()).unwrap();
    let disk = adi.mine_capped(sup, Some(5)).unwrap();
    assert!(disk.same_codes_and_supports(&reference));
}

#[test]
fn pattern_supports_shrink_as_threshold_rises() {
    let db = synthetic_db();
    let lo = GSpan::new().mine(&db, db.abs_support(0.05));
    let hi = GSpan::new().mine(&db, db.abs_support(0.30));
    assert!(hi.len() < lo.len(), "{} !< {}", hi.len(), lo.len());
    for p in hi.iter() {
        assert_eq!(lo.support(&p.code), Some(p.support));
    }
}
