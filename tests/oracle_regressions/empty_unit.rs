//! Regression: degenerate `GraphPart` splits produced empty units.
//!
//! A graph whose high-`ufreq` vertices are isolated could be assigned
//! entirely to one side; every piece on the other side was then empty,
//! and with enough units an entire unit held no edge at all. The fix
//! clamps degenerate side assignments in `DbPartition::split_node` (an
//! edge endpoint is moved to the starved side, turning that edge
//! connective) and `DbPartition::check_invariants` now rejects empty
//! units outright.

use graphmine_core::{PartMiner, PartMinerConfig};
use graphmine_graph::{Graph, GraphDb};
use graphmine_miner::{GSpan, MemoryMiner};
use graphmine_partition::{Criteria, DbPartition, GraphPart};

/// One labeled edge plus isolated vertices that attract the partitioner:
/// their update frequency dwarfs the edge endpoints'.
fn edge_with_hot_isolated_vertices() -> (Graph, Vec<f64>) {
    let mut g = Graph::new();
    g.add_vertex(1);
    g.add_vertex(2);
    g.add_vertex(7);
    g.add_vertex(7);
    g.add_edge(0, 1, 5).unwrap();
    (g, vec![0.0, 0.0, 100.0, 100.0])
}

#[test]
fn hot_isolated_vertices_leave_no_unit_empty() {
    let mut db = GraphDb::new();
    let mut ufreq = Vec::new();
    for _ in 0..3 {
        let (g, uf) = edge_with_hot_isolated_vertices();
        db.push(g);
        ufreq.push(uf);
    }
    for k in [2usize, 3, 4] {
        let part = DbPartition::build(&db, &ufreq, &GraphPart::new(Criteria::ISOLATE_UPDATES), k);
        part.check_invariants().unwrap_or_else(|e| panic!("k={k}: {e}"));
        for (j, unit) in part.unit_dbs().into_iter().enumerate() {
            assert!(unit.total_edges() > 0, "k={k}: unit {j} lost every edge");
        }
    }
}

#[test]
fn mining_through_a_degenerate_split_stays_lossless() {
    let mut db = GraphDb::new();
    let mut ufreq = Vec::new();
    for _ in 0..3 {
        let (g, uf) = edge_with_hot_isolated_vertices();
        db.push(g);
        ufreq.push(uf);
    }
    let direct = GSpan::new().mine(&db, 3);
    assert_eq!(direct.len(), 1, "exactly the shared edge is frequent");
    for k in [2usize, 4] {
        let mut cfg = PartMinerConfig::with_k(k);
        cfg.exact_supports = true;
        let outcome = PartMiner::new(cfg).mine(&db, &ufreq, 3);
        assert!(
            outcome.patterns.same_codes_and_supports(&direct),
            "k={k}: partminer {} vs direct {}",
            outcome.patterns.len(),
            direct.len()
        );
    }
}

/// A fully edgeless database cannot honor `k` units; it must freeze into
/// a single unit instead of manufacturing empty ones (or panicking).
#[test]
fn edgeless_database_freezes_into_one_unit() {
    let mut g = Graph::new();
    g.add_vertex(1);
    g.add_vertex(2);
    let db = GraphDb::from_graphs(vec![g]);
    let ufreq = vec![vec![0.0, 0.0]];
    let part = DbPartition::build(&db, &ufreq, &GraphPart::new(Criteria::COMBINED), 4);
    assert_eq!(part.unit_count(), 1);
    part.check_invariants().unwrap();

    let outcome = PartMiner::new(PartMinerConfig::with_k(4)).mine(&db, &ufreq, 1);
    assert!(outcome.patterns.is_empty());
}
