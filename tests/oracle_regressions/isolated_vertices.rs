//! Regression: isolated vertices vanished from every partition unit.
//!
//! `split_by_sides` only copied a vertex into a piece when one of its
//! edges landed there, so a vertex with no incident edge was dropped from
//! *both* pieces. It then existed in no unit: `recovered_graph` could not
//! restore its label (the oracle's partition-invariants check saw a
//! `u32::MAX` placeholder), and a `RelabelVertex` update aimed at it
//! propagated to no piece. The fix copies each isolated vertex into the
//! piece of its assigned side, and `check_invariants` now enforces vertex
//! coverage alongside edge coverage.

use graphmine_graph::{DbUpdate, Graph, GraphDb, GraphUpdate};
use graphmine_partition::{Criteria, DbPartition, GraphPart};

/// One edge plus an isolated vertex, plus a fully edgeless graph — the
/// two shapes that lost vertices.
fn db() -> (GraphDb, Vec<Vec<f64>>) {
    let mut g0 = Graph::new();
    g0.add_vertex(1);
    g0.add_vertex(2);
    g0.add_edge(0, 1, 5).unwrap();
    g0.add_vertex(3); // isolated
    let mut g1 = Graph::new();
    g1.add_vertex(4);
    g1.add_vertex(4); // entirely edgeless graph
    let ufreq = vec![vec![0.0; 3], vec![0.0; 2]];
    (GraphDb::from_graphs(vec![g0, g1]), ufreq)
}

#[test]
fn isolated_vertices_survive_partition_and_recovery() {
    let (db, ufreq) = db();
    for k in [2usize, 3] {
        let part = DbPartition::build(&db, &ufreq, &GraphPart::new(Criteria::COMBINED), k);
        part.check_invariants().unwrap_or_else(|e| panic!("k={k}: {e}"));
        for (gid, g) in db.iter() {
            let rec = part.recovered_graph(gid);
            assert_eq!(rec.vertex_count(), g.vertex_count(), "k={k} gid {gid}");
            for v in 0..g.vertex_count() as u32 {
                assert_eq!(
                    rec.vlabel(v),
                    g.vlabel(v),
                    "k={k} gid {gid}: vertex {v} label lost in recovery"
                );
            }
        }
        // Each isolated vertex lives in exactly one unit.
        for (gid, v) in [(0u32, 2u32), (1, 0), (1, 1)] {
            let units = part.units_containing_vertex(gid, v);
            assert_eq!(units.len(), 1, "k={k}: gid {gid} vertex {v} in units {units:?}");
        }
    }
}

#[test]
fn relabeling_an_isolated_vertex_reaches_its_unit() {
    let (db, ufreq) = db();
    let mut part = DbPartition::build(&db, &ufreq, &GraphPart::new(Criteria::COMBINED), 2);
    let touched = part
        .apply_update(DbUpdate { gid: 0, update: GraphUpdate::RelabelVertex { v: 2, label: 9 } })
        .unwrap();
    assert_eq!(touched.len(), 1, "exactly one unit holds the isolated vertex");
    part.check_invariants().unwrap();
    assert_eq!(part.recovered_graph(0).vlabel(2), 9, "relabel lost before reaching the unit");
}
