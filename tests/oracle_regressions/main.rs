//! Minimized regression tests for the bugs the correctness oracle
//! (`graphmine-oracle`, see docs/CORRECTNESS.md) flushed out. Each module
//! is one bug, reduced to the smallest database that reproduces it, and
//! exercises the *fixed* production code directly — no fault injection.

mod empty_unit;
mod isolated_vertices;
mod merge_stats;
mod prune_set_fi;
mod relabel_edge_touch;
