//! Regression: the parallel merge-join folded `MergeStats` in thread
//! *completion* order and could drop or double-absorb a chunk's counters
//! under racy schedules. The executor now returns per-job results in
//! submission order, so the totals are a pure function of the work list —
//! serial and executor-backed runs must report identical stats, not just
//! identical pattern sets.

use graphmine_core::{merge_join, Executor, JoinPolicy, MergeContext};
use graphmine_datagen::{generate, GenParams};
use graphmine_graph::{EmbeddingMode, GraphDb, DEFAULT_EMBEDDING_BUDGET};
use graphmine_miner::{GSpan, MemoryMiner};
use graphmine_partition::{split_by_sides, Bipartitioner, Criteria, GraphPart};
use graphmine_telemetry::Telemetry;

/// Splits every graph in two with the paper's partitioner, producing the
/// unit databases a 2-unit PartMiner would mine.
fn split_db(db: &GraphDb) -> (GraphDb, GraphDb) {
    let part = GraphPart::new(Criteria::MIN_CONNECTIVITY);
    let mut d0 = GraphDb::new();
    let mut d1 = GraphDb::new();
    for (_, g) in db.iter() {
        let uf = vec![0.0; g.vertex_count()];
        let sides = part.assign(g, &uf);
        let split = split_by_sides(g, &uf, &sides);
        d0.push(split.side1.graph);
        d1.push(split.side2.graph);
    }
    (d0, d1)
}

/// A few-label database mined at low unit support produces hundreds of
/// candidates per level — enough to cross the parallel batching floor so
/// the threaded fold really runs.
#[test]
fn parallel_merge_stats_match_serial_on_a_large_batch() {
    let db = generate(&GenParams::new(24, 9, 3, 8, 4).with_seed(1234));
    let (d0, d1) = split_db(&db);
    let p0 = GSpan::new().mine(&d0, 1);
    let p1 = GSpan::new().mine(&d1, 1);
    assert!(
        p0.len() + p1.len() > 128,
        "workload too small to engage the parallel path: {} + {}",
        p0.len(),
        p1.len()
    );

    let exec = Executor::new(4);
    for exact in [false, true] {
        let run = |executor: Option<&Executor>| {
            let tel = Telemetry::new();
            let ctx = MergeContext {
                db: &db,
                min_support: 2,
                policy: JoinPolicy::Complete,
                max_edges: Some(4),
                exact_supports: exact,
                known: None,
                trust_known: false,
                executor,
                embedding_lists: EmbeddingMode::Auto,
                embedding_budget: DEFAULT_EMBEDDING_BUDGET,
                telemetry: Some(&tel),
            };
            let (merged, stats) = merge_join(&ctx, &p0, &p1);
            (merged, stats, tel.counters().snapshot())
        };
        let (serial, serial_stats, serial_counts) = run(None);
        let (parallel, parallel_stats, parallel_counts) = run(Some(&exec));
        assert!(
            serial.same_codes_and_supports(&parallel),
            "exact={exact}: serial {} vs parallel {} patterns",
            serial.len(),
            parallel.len()
        );
        assert_eq!(serial_stats, parallel_stats, "exact={exact}: merge stats diverged");
        assert_eq!(serial_counts, parallel_counts, "exact={exact}: counters diverged");
    }
}
