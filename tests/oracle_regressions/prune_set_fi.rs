//! Regression: incremental prune-set construction (paper-literal trust
//! mode, `verify_unchanged = false`).
//!
//! The bug: a pattern that dropped out of a *touched* unit's re-mined
//! result was only added to the prune set if it survived in no other
//! unit. Surviving elsewhere is no alibi — the unit-level count is a
//! lower bound, and the pattern's database-level support may still have
//! fallen below `min_support`. The stale entry then rode through the
//! `known`-skip as "unchanged frequent" and never landed in `FI`.
//!
//! The database is engineered so the path `P = (0)-5-(1)-6-(2)` occurs in
//! the pieces of both units (two graphs each); one relabel batch deletes
//! every occurrence from one unit only, dropping the true support from 4
//! to 2 < 3.

use graphmine_core::{IncPartMiner, PartMiner, PartMinerConfig};
use graphmine_graph::{dfscode::min_dfs_code, DbUpdate, Graph, GraphDb, GraphUpdate};
use graphmine_miner::{GSpan, MemoryMiner};

fn chain(labels: [u32; 4], elabels: [u32; 3]) -> Graph {
    let mut g = Graph::new();
    for l in labels {
        g.add_vertex(l);
    }
    for (i, el) in elabels.into_iter().enumerate() {
        g.add_edge(i as u32, i as u32 + 1, el).unwrap();
    }
    g
}

fn build_db() -> GraphDb {
    let mut db = GraphDb::new();
    db.push(chain([3, 0, 1, 2], [7, 5, 6]));
    db.push(chain([3, 0, 1, 2], [7, 5, 6]));
    db.push(chain([0, 1, 2, 3], [5, 6, 7]));
    db.push(chain([0, 1, 2, 3], [5, 6, 7]));
    // Disjoint edges keeping every 1-edge pattern frequent, so the prune
    // set can only come from the unit diffs.
    let mut g = Graph::new();
    for l in [0u32, 1, 1, 2] {
        g.add_vertex(l);
    }
    g.add_edge(0, 1, 5).unwrap();
    g.add_edge(2, 3, 6).unwrap();
    db.push(g);
    db
}

/// The demoted pattern: the labeled path `(0)-5-(1)-6-(2)`.
fn demoted() -> graphmine_graph::DfsCode {
    let mut p = Graph::new();
    p.add_vertex(0);
    p.add_vertex(1);
    p.add_vertex(2);
    p.add_edge(0, 1, 5).unwrap();
    p.add_edge(1, 2, 6).unwrap();
    min_dfs_code(&p)
}

#[test]
fn pattern_deleted_from_a_touched_unit_lands_in_fi() {
    let db = build_db();
    let ufreq: Vec<Vec<f64>> = db.iter().map(|(_, g)| vec![0.0; g.vertex_count()]).collect();
    let mut cfg = PartMinerConfig::with_k(2);
    cfg.verify_unchanged = false; // paper-literal pruning: no safety net
    let outcome = PartMiner::new(cfg).mine(&db, &ufreq, 3);
    let code = demoted();
    assert_eq!(outcome.patterns.support(&code), Some(4), "P starts frequent");
    let mut state = outcome.state;

    let updates = vec![
        DbUpdate { gid: 0, update: GraphUpdate::RelabelVertex { v: 3, label: 9 } },
        DbUpdate { gid: 1, update: GraphUpdate::RelabelVertex { v: 3, label: 9 } },
    ];
    let mut mirror = db.clone();
    graphmine_graph::update::apply_all(&mut mirror, &updates).unwrap();

    let inc = IncPartMiner::update(&mut state, &updates).unwrap();

    assert!(
        !inc.patterns.contains(&code),
        "P has true support 2 < 3 after the batch; a stale prune set kept it frequent"
    );
    assert!(inc.fi.contains(&code), "the demotion must be classified as FI");

    // With the prune set built correctly, the whole trust-mode result
    // matches a from-scratch mine on this database.
    let direct = GSpan::new().mine(&mirror, 3);
    assert!(
        inc.patterns.same_codes(&direct),
        "trust mode: {} patterns, from-scratch {}",
        inc.patterns.len(),
        direct.len()
    );
}

/// The same scenario in the default verify mode must agree exactly —
/// codes and supports — with a from-scratch mine.
#[test]
fn verify_mode_stays_exact_on_the_same_scenario() {
    let db = build_db();
    let ufreq: Vec<Vec<f64>> = db.iter().map(|(_, g)| vec![0.0; g.vertex_count()]).collect();
    let mut cfg = PartMinerConfig::with_k(2);
    cfg.exact_supports = true;
    let outcome = PartMiner::new(cfg).mine(&db, &ufreq, 3);
    let mut state = outcome.state;

    let updates = vec![
        DbUpdate { gid: 0, update: GraphUpdate::RelabelVertex { v: 3, label: 9 } },
        DbUpdate { gid: 1, update: GraphUpdate::RelabelVertex { v: 3, label: 9 } },
    ];
    let mut mirror = db.clone();
    graphmine_graph::update::apply_all(&mut mirror, &updates).unwrap();

    let inc = IncPartMiner::update(&mut state, &updates).unwrap();
    let direct = GSpan::new().mine(&mirror, 3);
    assert!(inc.patterns.same_codes_and_supports(&direct));
    assert!(inc.fi.contains(&demoted()));
}
