//! Regression: `GraphUpdate::RelabelEdge::touched_vertices` returned
//! `vec![]`, so edge relabels claimed to touch *nothing*.
//!
//! Two paths consume touched vertices. The partition's own update
//! propagation (`DbPartition::apply_update_impact`) dispatches per update
//! kind and walks the tree itself, so it masked the bug for correctness:
//! an edge relabel still re-mined its unit. But the update-frequency
//! attribution (`ufreq_from_updates`, feeding the paper's partitioning
//! criteria) consumes `touched_vertices` directly — an edge relabel
//! contributed no heat to either endpoint, silently steering future
//! partitions away from edge-churned regions. This module pins both
//! invariants: the endpoints are reported, and an edge relabel in an
//! otherwise-untouched unit flips a pattern's frequency with the
//! incremental result staying exact.

use graphmine_core::{IncPartMiner, PartMiner, PartMinerConfig};
use graphmine_datagen::ufreq_from_updates;
use graphmine_graph::{dfscode::min_dfs_code, DbUpdate, Graph, GraphDb, GraphUpdate};
use graphmine_miner::{GSpan, MemoryMiner};

fn chain(labels: [u32; 4], elabels: [u32; 3]) -> Graph {
    let mut g = Graph::new();
    for l in labels {
        g.add_vertex(l);
    }
    for (i, el) in elabels.into_iter().enumerate() {
        g.add_edge(i as u32, i as u32 + 1, el).unwrap();
    }
    g
}

/// Four chains carrying the path `P = (0)-5-(1)-6-(2)` (support 4), plus
/// one disjoint-edges graph keeping every 1-edge pattern frequent so
/// demotions can only come from the unit diffs.
fn build_db() -> GraphDb {
    let mut db = GraphDb::new();
    db.push(chain([3, 0, 1, 2], [7, 5, 6]));
    db.push(chain([3, 0, 1, 2], [7, 5, 6]));
    db.push(chain([0, 1, 2, 3], [5, 6, 7]));
    db.push(chain([0, 1, 2, 3], [5, 6, 7]));
    let mut g = Graph::new();
    for l in [0u32, 1, 1, 2] {
        g.add_vertex(l);
    }
    g.add_edge(0, 1, 5).unwrap();
    g.add_edge(2, 3, 6).unwrap();
    db.push(g);
    db
}

/// The pattern the relabels demote: the labeled path `(0)-5-(1)-6-(2)`.
fn demoted() -> graphmine_graph::DfsCode {
    let mut p = Graph::new();
    p.add_vertex(0);
    p.add_vertex(1);
    p.add_vertex(2);
    p.add_edge(0, 1, 5).unwrap();
    p.add_edge(1, 2, 6).unwrap();
    min_dfs_code(&p)
}

/// In `chain([3, 0, 1, 2], ..)` edge 1 joins vertices 1 and 2 — the
/// `(0)-5-(1)` edge of `P`. Relabeling it in gids 0 and 1 deletes both of
/// that unit's occurrences of `P`, dropping true support from 4 to 2 < 3.
fn relabel_batch() -> Vec<DbUpdate> {
    vec![
        DbUpdate { gid: 0, update: GraphUpdate::RelabelEdge { e: 1, label: 9 } },
        DbUpdate { gid: 1, update: GraphUpdate::RelabelEdge { e: 1, label: 9 } },
    ]
}

/// The direct pin: an edge relabel touches both endpoints of the edge,
/// resolved against the pre-update graph — never the empty set.
#[test]
fn relabel_edge_touches_both_endpoints() {
    let db = build_db();
    let g = db.graph(0);
    let (u, v, _) = g.edge(1);
    let touched = GraphUpdate::RelabelEdge { e: 1, label: 9 }.touched_vertices(g);
    assert_eq!(touched, vec![u, v], "edge relabels must report the relabeled edge's endpoints");
    assert!(!touched.is_empty(), "the original bug: edge relabels claimed to touch nothing");
}

/// The attribution pin: update heat lands on the relabeled edge's
/// endpoints, so the partitioning criteria see edge churn.
#[test]
fn ufreq_attributes_edge_relabels_to_endpoints() {
    let db = build_db();
    let uf = ufreq_from_updates(&db, &relabel_batch());
    for gid in [0usize, 1] {
        assert_eq!(uf[gid][1], 1.0, "gid {gid}: endpoint 1 of edge 1 got no heat");
        assert_eq!(uf[gid][2], 1.0, "gid {gid}: endpoint 2 of edge 1 got no heat");
        assert_eq!(uf[gid][0], 0.0, "gid {gid}: vertex 0 is not an endpoint of edge 1");
        assert_eq!(uf[gid][3], 0.0, "gid {gid}: vertex 3 is not an endpoint of edge 1");
    }
}

/// End to end: the edge-relabel batch flips `P`'s frequency, the touched
/// unit is re-mined (the partition's per-kind propagation carries the
/// impact even where `touched_vertices` only feeds the criteria), and
/// the incremental result matches a from-scratch mine exactly.
#[test]
fn edge_relabel_flips_frequency_and_stays_exact() {
    let db = build_db();
    let ufreq: Vec<Vec<f64>> = db.iter().map(|(_, g)| vec![0.0; g.vertex_count()]).collect();
    let mut cfg = PartMinerConfig::with_k(2);
    cfg.exact_supports = true;
    let outcome = PartMiner::new(cfg).mine(&db, &ufreq, 3);
    let code = demoted();
    assert_eq!(outcome.patterns.support(&code), Some(4), "P starts frequent");
    let mut state = outcome.state;

    let updates = relabel_batch();
    let mut mirror = db.clone();
    graphmine_graph::update::apply_all(&mut mirror, &updates).unwrap();

    let inc = IncPartMiner::update(&mut state, &updates).unwrap();
    assert!(inc.stats.units_remined >= 1, "an edge relabel must mark its unit touched");
    assert!(
        !inc.patterns.contains(&code),
        "P has true support 2 < 3 after the edge relabels; its unit was never re-mined"
    );
    assert!(inc.fi.contains(&code), "the demotion must be classified as FI");

    let direct = GSpan::new().mine(&mirror, 3);
    assert!(
        inc.patterns.same_codes_and_supports(&direct),
        "incremental: {} patterns, from-scratch: {}",
        inc.patterns.len(),
        direct.len()
    );
}
