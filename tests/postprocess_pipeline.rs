//! Integration: PartMiner output flows through the closed/maximal
//! post-processors and the pattern-set text format without loss.

use graphmine_core::{PartMiner, PartMinerConfig};
use graphmine_datagen::{generate, GenParams};
use graphmine_graph::{iso, pattern_io};
use graphmine_miner::{closed_patterns, maximal_patterns};

#[test]
fn closed_and_maximal_from_partminer_output() {
    let db = generate(&GenParams::new(50, 8, 4, 8, 3));
    let ufreq: Vec<Vec<f64>> = db.iter().map(|(_, g)| vec![0.0; g.vertex_count()]).collect();
    let sup = db.abs_support(0.2);
    let mut cfg = PartMinerConfig::with_k(2);
    cfg.exact_supports = true;
    let all = PartMiner::new(cfg).mine(&db, &ufreq, sup).patterns;

    let closed = closed_patterns(&all);
    let maximal = maximal_patterns(&all);
    assert!(!closed.is_empty());
    assert!(maximal.len() <= closed.len());
    assert!(closed.len() <= all.len());

    // The closed set determines every support: each frequent pattern's
    // support equals the max support of a closed supergraph containing it.
    for p in all.iter() {
        let derived = closed
            .iter()
            .filter(|c| c.size() >= p.size() && iso::contains(&c.graph, &p.code))
            .map(|c| c.support)
            .max();
        assert_eq!(derived, Some(p.support), "{}", p.code);
    }
}

#[test]
fn pattern_file_round_trips_partminer_results() {
    let db = generate(&GenParams::new(40, 7, 4, 8, 3));
    let ufreq: Vec<Vec<f64>> = db.iter().map(|(_, g)| vec![0.0; g.vertex_count()]).collect();
    let mut cfg = PartMinerConfig::with_k(3);
    cfg.exact_supports = true;
    let all = PartMiner::new(cfg).mine(&db, &ufreq, db.abs_support(0.25)).patterns;

    let mut bytes = Vec::new();
    pattern_io::write_patterns(&mut bytes, &all).unwrap();
    let back = pattern_io::read_patterns(&bytes[..]).unwrap();
    assert!(back.same_codes_and_supports(&all));
}
