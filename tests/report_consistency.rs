//! Integration: the telemetry `RunReport` must reconcile with the pattern
//! sets and ad-hoc stats the pipeline returns — counters are not decorative.

use graphmine_core::{IncPartMiner, PartMiner, PartMinerConfig};
use graphmine_datagen::{
    generate, plan_updates, ufreq_from_updates, GenParams, UpdateKind, UpdateParams,
};
use graphmine_graph::GraphDb;
use graphmine_telemetry::{Counter, RunReport, Telemetry};

fn synthetic_db() -> GraphDb {
    generate(&GenParams::new(60, 10, 5, 10, 4))
}

fn zero_ufreq(db: &GraphDb) -> Vec<Vec<f64>> {
    db.iter().map(|(_, g)| vec![0.0; g.vertex_count()]).collect()
}

/// With `k = 2` exactly one merge-join runs and its output *is* the final
/// pattern set, so `verified_frequent` must equal `patterns.len()`.
fn check_partminer(exact_supports: bool) {
    let db = synthetic_db();
    let sup = db.abs_support(0.1);
    let mut cfg = PartMinerConfig::with_k(2);
    cfg.exact_supports = exact_supports;

    let tel = Telemetry::new();
    let outcome = PartMiner::new(cfg).mine_instrumented(&db, &zero_ufreq(&db), sup, &tel);
    let report = RunReport::capture("partminer", &tel);

    assert_eq!(
        report.counter(Counter::VerifiedFrequent),
        outcome.patterns.len() as u64,
        "exact_supports={exact_supports}: every reported pattern was verified exactly once"
    );
    assert_eq!(report.counter(Counter::UnitsMined), 2);
    assert_eq!(report.counter(Counter::NodesMerged), 1);

    // The ad-hoc MergeStats and the telemetry counters tally the same events.
    assert_eq!(report.counter(Counter::CandidatesGenerated), outcome.stats.merge.candidates as u64);
    assert_eq!(report.counter(Counter::BoundShortcut), outcome.stats.merge.shortcut as u64);
    assert_eq!(report.counter(Counter::KnownSkipped), outcome.stats.merge.known_skipped as u64);

    // Serial run: the top-level stages partition the wall time.
    for stage in ["partition", "unit_mine", "merge_join"] {
        assert!(report.stage_ns(stage) > 0, "stage {stage} missing");
    }
    let staged: u64 = report.stages.iter().map(|s| s.total_ns).sum();
    assert!(staged <= report.total_ns, "stages exceed total on a serial run");
    assert!(
        staged * 100 >= report.total_ns * 95,
        "stages cover <95% of the run: {staged} of {}",
        report.total_ns
    );

    // The JSON form is lossless.
    let parsed = RunReport::from_json(&report.to_json()).unwrap();
    assert_eq!(parsed, report);
}

#[test]
fn partminer_report_reconciles_exact() {
    check_partminer(true);
}

#[test]
fn partminer_report_reconciles_shortcut() {
    check_partminer(false);
}

#[test]
fn incpartminer_report_reconciles() {
    let db = synthetic_db();
    let plan = plan_updates(&db, &UpdateParams::new(0.3, 2, UpdateKind::Mixed, 5));
    let ufreq = ufreq_from_updates(&db, &plan);
    let sup = db.abs_support(0.1);
    let mut cfg = PartMinerConfig::with_k(2);
    cfg.exact_supports = true;

    let outcome = PartMiner::new(cfg).mine(&db, &ufreq, sup);
    let mut state = outcome.state;
    let tel = Telemetry::new();
    let inc = IncPartMiner::update_instrumented(&mut state, &plan, &tel).unwrap();
    let report = RunReport::capture("incpartminer", &tel);

    // The UF/FI/IF classification tallies match the returned sets.
    assert_eq!(report.counter(Counter::IncUnchangedFrequent), inc.uf.len() as u64);
    assert_eq!(report.counter(Counter::IncFrequentToInfrequent), inc.fi.len() as u64);
    assert_eq!(report.counter(Counter::IncInfrequentToFrequent), inc.if_new.len() as u64);
    assert_eq!(report.counter(Counter::UnitsMined), inc.stats.units_remined as u64);

    // Re-merging at the root verifies exactly the final pattern set.
    assert_eq!(report.counter(Counter::VerifiedFrequent), inc.patterns.len() as u64);

    // Stage accounting: one inc_remine span per re-mined unit, and the
    // re-merge appears as the single top-level merge_join span.
    let remine = report.stages.iter().find(|s| s.name == "inc_remine").unwrap();
    assert_eq!(remine.count, inc.stats.units_remined as u64);
    assert_eq!(report.stages.iter().find(|s| s.name == "merge_join").unwrap().count, 1);

    let parsed = RunReport::from_json(&report.to_json()).unwrap();
    assert_eq!(parsed, report);
}
