//! Offline shim for `criterion`: the macro and builder surface used by the
//! bench harness, backed by a plain calibrated timing loop that prints a
//! mean time per iteration. No statistics, outlier analysis, or HTML
//! reports — adequate for relative comparisons between runs.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, measurement_time: Duration::from_secs(1) }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), self.sample_size, self.measurement_time, f);
        self
    }
}

/// A named group sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_one(&full, self.sample_size, self.measurement_time, f);
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints as
    /// it goes, so this is a no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, budget: Duration, mut f: F) {
    let mut b = Bencher { total: Duration::ZERO, iters: 0 };
    // Warm-up pass (also sizes one sample).
    f(&mut b);
    let per_sample = b.total.max(Duration::from_nanos(1));
    let affordable = (budget.as_nanos() / per_sample.as_nanos().max(1)) as usize;
    let runs = samples.min(affordable.max(1));
    b.total = Duration::ZERO;
    b.iters = 0;
    for _ in 0..runs {
        f(&mut b);
    }
    let mean_ns = b.total.as_nanos() as f64 / b.iters.max(1) as f64;
    println!("bench {name:<50} {:>14.1} ns/iter ({} iters)", mean_ns, b.iters);
}

/// Per-benchmark measurement driver handed to the closure.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let n = 10u64;
        let start = Instant::now();
        for _ in 0..n {
            black_box(f());
        }
        self.total += start.elapsed();
        self.iters += n;
    }

    /// Times `f` on fresh inputs produced by `setup` (setup excluded from
    /// the measurement).
    pub fn iter_with_setup<S, O, Setup, F>(&mut self, mut setup: Setup, mut f: F)
    where
        Setup: FnMut() -> S,
        F: FnMut(S) -> O,
    {
        let n = 10u64;
        for _ in 0..n {
            let input = setup();
            let start = Instant::now();
            black_box(f(input));
            self.total += start.elapsed();
        }
        self.iters += n;
    }
}

/// Declares a benchmark group function, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, as upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_loop_runs_and_counts() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        let mut calls = 0u64;
        g.bench_function("noop", |b| b.iter(|| calls += 1));
        g.finish();
        assert!(calls > 0);
        c.bench_function("setup", |b| b.iter_with_setup(|| 3u64, |x| x * 2));
    }
}
