//! Offline shim for `crossbeam`: the `thread::scope` API implemented on
//! top of `std::thread::scope` (stable since 1.63).
//!
//! Differences from upstream: `scope` never returns `Err` — a panicked
//! child whose handle is not joined propagates its panic when the scope
//! exits (std semantics) instead of being captured in the result.

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// A scope for spawning borrowing threads (wraps [`std::thread::Scope`]).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a scope handle so
        /// nested spawns work, matching the crossbeam signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let scope = Scope { inner };
                    f(&scope)
                }),
            }
        }
    }

    /// Creates a scope in which borrowing threads can be spawned; all
    /// threads are joined before the call returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            let scope = Scope { inner: s };
            f(&scope)
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_spawns_and_joins_borrowing_threads() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> =
                data.chunks(2).map(|c| s.spawn(move |_| c.iter().sum::<u64>())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_the_scope_argument() {
        let n = crate::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().unwrap()).join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 7);
    }
}
