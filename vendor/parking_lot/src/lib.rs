//! Offline shim for `parking_lot`: `Mutex` and `RwLock` with the
//! parking_lot calling convention (`lock()` returns the guard directly,
//! poisoning is ignored) implemented over `std::sync`.

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning from panicked holders.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose acquisitions never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
