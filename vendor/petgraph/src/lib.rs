//! Offline shim for `petgraph`: just the undirected `UnGraph` surface the
//! interop layer uses — adjacency-list construction, positional indices,
//! weight lookup by index, and edge-endpoint queries.

/// Graph types and indices.
pub mod graph {
    use std::ops::{Index, IndexMut};

    /// Positional node index.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
    pub struct NodeIndex(pub u32);

    impl NodeIndex {
        /// Builds an index from a position.
        pub fn new(i: usize) -> Self {
            NodeIndex(i as u32)
        }

        /// The underlying position.
        pub fn index(self) -> usize {
            self.0 as usize
        }
    }

    /// Positional edge index.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
    pub struct EdgeIndex(pub u32);

    impl EdgeIndex {
        /// Builds an index from a position.
        pub fn new(i: usize) -> Self {
            EdgeIndex(i as u32)
        }

        /// The underlying position.
        pub fn index(self) -> usize {
            self.0 as usize
        }
    }

    /// An undirected graph with node weights `N` and edge weights `E`.
    #[derive(Debug, Clone, Default)]
    pub struct UnGraph<N, E> {
        nodes: Vec<N>,
        edges: Vec<(NodeIndex, NodeIndex, E)>,
    }

    impl<N, E> UnGraph<N, E> {
        /// An empty undirected graph.
        pub fn new_undirected() -> Self {
            UnGraph { nodes: Vec::new(), edges: Vec::new() }
        }

        /// An empty graph with reserved capacity.
        pub fn with_capacity(nodes: usize, edges: usize) -> Self {
            UnGraph { nodes: Vec::with_capacity(nodes), edges: Vec::with_capacity(edges) }
        }

        /// Adds a node, returning its index.
        pub fn add_node(&mut self, weight: N) -> NodeIndex {
            self.nodes.push(weight);
            NodeIndex((self.nodes.len() - 1) as u32)
        }

        /// Adds an edge (parallel edges and self-loops are representable,
        /// as in upstream petgraph), returning its index.
        pub fn add_edge(&mut self, a: NodeIndex, b: NodeIndex, weight: E) -> EdgeIndex {
            assert!(a.index() < self.nodes.len() && b.index() < self.nodes.len());
            self.edges.push((a, b, weight));
            EdgeIndex((self.edges.len() - 1) as u32)
        }

        /// Number of nodes.
        pub fn node_count(&self) -> usize {
            self.nodes.len()
        }

        /// Number of edges.
        pub fn edge_count(&self) -> usize {
            self.edges.len()
        }

        /// All node indices in insertion order.
        pub fn node_indices(&self) -> impl Iterator<Item = NodeIndex> {
            (0..self.nodes.len() as u32).map(NodeIndex)
        }

        /// All edge indices in insertion order.
        pub fn edge_indices(&self) -> impl Iterator<Item = EdgeIndex> {
            (0..self.edges.len() as u32).map(EdgeIndex)
        }

        /// The endpoints of an edge.
        pub fn edge_endpoints(&self, e: EdgeIndex) -> Option<(NodeIndex, NodeIndex)> {
            self.edges.get(e.index()).map(|&(a, b, _)| (a, b))
        }

        /// A node's weight.
        pub fn node_weight(&self, n: NodeIndex) -> Option<&N> {
            self.nodes.get(n.index())
        }

        /// An edge's weight.
        pub fn edge_weight(&self, e: EdgeIndex) -> Option<&E> {
            self.edges.get(e.index()).map(|(_, _, w)| w)
        }
    }

    impl<N, E> Index<NodeIndex> for UnGraph<N, E> {
        type Output = N;

        fn index(&self, n: NodeIndex) -> &N {
            &self.nodes[n.index()]
        }
    }

    impl<N, E> IndexMut<NodeIndex> for UnGraph<N, E> {
        fn index_mut(&mut self, n: NodeIndex) -> &mut N {
            &mut self.nodes[n.index()]
        }
    }

    impl<N, E> Index<EdgeIndex> for UnGraph<N, E> {
        type Output = E;

        fn index(&self, e: EdgeIndex) -> &E {
            &self.edges[e.index()].2
        }
    }

    impl<N, E> IndexMut<EdgeIndex> for UnGraph<N, E> {
        fn index_mut(&mut self, e: EdgeIndex) -> &mut E {
            &mut self.edges[e.index()].2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::graph::UnGraph;

    #[test]
    fn build_and_query() {
        let mut g: UnGraph<u32, u32> = UnGraph::new_undirected();
        let a = g.add_node(5);
        let b = g.add_node(7);
        let e = g.add_edge(a, b, 11);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g[a], 5);
        assert_eq!(g[e], 11);
        assert_eq!(g.edge_endpoints(e), Some((a, b)));
        assert_eq!(g.node_indices().count(), 2);
    }
}
