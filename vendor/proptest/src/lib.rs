//! Offline shim for `proptest`: the strategy combinators and macros this
//! workspace's property tests use, backed by deterministic randomized
//! generation.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! case number and seed instead of a minimized input), and generation is
//! seeded from the test name so runs are reproducible; set
//! `PROPTEST_SEED=<u64>` to explore a different stream.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// The deterministic generator behind every strategy (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from a test name (stable FNV-1a), XORed with
    /// `PROPTEST_SEED` when set.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        if let Some(extra) = std::env::var("PROPTEST_SEED").ok().and_then(|s| s.parse::<u64>().ok())
        {
            h ^= extra;
        }
        TestRng { state: h }
    }

    /// The seed the generator started from (for failure reports).
    pub fn seed(&self) -> u64 {
        self.state
    }

    /// Next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw below `bound` (`bound > 0`).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values (upstream's `Strategy`, minus shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe strategy view used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary {
    /// Draws a uniform value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy generating any value of `T` (upstream `any::<T>()`).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add((((rng.next_u64() as u128) * span) >> 64) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// A fixed-shape vector of independent strategies (upstream implements
/// `Strategy` for `Vec<S>` the same way).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive element-count bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Weighted choice between boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// A union of `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum::<u64>();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights summed")
    }
}

/// The usual glob import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Any,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies with a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof!($(1 => $strat),+)
    };
}

/// Sentinel payload thrown by [`prop_assume!`]; the `proptest!` runner
/// treats a case that unwinds with this as rejected, not failed.
#[doc(hidden)]
#[derive(Debug)]
pub struct CaseRejected;

/// Installs (once) a panic hook that stays silent for [`CaseRejected`]
/// unwinds and defers to the previous hook for everything else.
#[doc(hidden)]
pub fn install_quiet_reject_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CaseRejected>().is_none() {
                previous(info);
            }
        }));
    });
}

/// Discards the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            std::panic::panic_any($crate::CaseRejected);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        $crate::prop_assume!($cond)
    };
}

/// Property assertion (plain `assert!` semantics in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declares `#[test]` functions that run their body over random inputs
/// drawn from the named strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::install_quiet_reject_hook();
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                let initial_seed = rng.seed();
                $(let $arg = $strat;)+
                for case in 0..config.cases {
                    let case_seed = rng.seed();
                    let result = {
                        $(let $arg = $crate::Strategy::generate(&$arg, &mut rng);)+
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || { $body }))
                    };
                    if let Err(payload) = result {
                        if payload.downcast_ref::<$crate::CaseRejected>().is_some() {
                            continue; // prop_assume! rejected the case
                        }
                        eprintln!(
                            "proptest {}: case {}/{} failed (block seed {:#x}, case seed {:#x}); \
                             rerun with PROPTEST_SEED to vary the stream",
                            stringify!($name), case + 1, config.cases, initial_seed, case_seed,
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        let s = crate::collection::vec(3u32..9, 2..=5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|x| (3..9).contains(x)));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::for_test("combinators");
        let s = (1usize..4)
            .prop_flat_map(|n| {
                let parts: Vec<BoxedStrategy<usize>> = (0..n).map(|i| (0..i + 1).boxed()).collect();
                (Just(n), parts)
            })
            .prop_map(|(n, parts)| (n, parts.len()));
        for _ in 0..100 {
            let (n, len) = s.generate(&mut rng);
            assert_eq!(n, len);
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::for_test("oneof");
        let s = prop_oneof![
            2 => Just(0u8),
            1 => (1u8..3).prop_map(|x| x),
        ];
        let mut seen = [false; 3];
        for _ in 0..300 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs(x in 0u32..10, ys in crate::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(x < 10);
            prop_assert!(ys.len() < 4, "len {}", ys.len());
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }
}
