//! Offline shim for `rand` 0.9: the `Rng`/`SeedableRng` surface this
//! workspace uses (`random`, `random_range`, `random_bool`) backed by a
//! SplitMix64 generator. Deterministic per seed; the stream differs from
//! upstream `StdRng` (ChaCha12), which no caller here depends on.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable constructors.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Types samplable uniformly from the full value domain via `Rng::random`.
pub trait Random {
    /// Draws a uniform value.
    fn random_from(rng: &mut impl RngCore) -> Self;
}

impl Random for u8 {
    fn random_from(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Random for u32 {
    fn random_from(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for u64 {
    fn random_from(rng: &mut impl RngCore) -> Self {
        rng.next_u64()
    }
}

impl Random for usize {
    fn random_from(rng: &mut impl RngCore) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for bool {
    fn random_from(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn random_from(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable with `Rng::random_range`.
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform draw from `[low, high]`, both bounds inclusive.
    fn sample_inclusive(rng: &mut impl RngCore, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high)`; callers guarantee `low < high`.
    fn sample_exclusive(rng: &mut impl RngCore, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn sample_inclusive(rng: &mut impl RngCore, low: Self, high: Self) -> Self {
                debug_assert!(low <= high);
                let span = (high as i128 - low as i128) as u128 + 1;
                // Multiply-shift mapping (Lemire); the bias per draw is
                // below 2^-64, irrelevant for synthetic data.
                let x = rng.next_u64() as u128;
                low.wrapping_add(((x * span) >> 64) as $t)
            }

            #[inline]
            fn sample_exclusive(rng: &mut impl RngCore, low: Self, high: Self) -> Self {
                debug_assert!(low < high);
                let span = (high as i128 - low as i128) as u128;
                let x = rng.next_u64() as u128;
                low.wrapping_add(((x * span) >> 64) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by `Rng::random_range`.
pub trait SampleRange<T> {
    /// Draws a value from the range; panics if it is empty.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample empty range");
        T::sample_inclusive(rng, low, high)
    }
}

/// High-level convenience methods; blanket-implemented for every core
/// generator.
pub trait Rng: RngCore + Sized {
    /// A uniform value over the type's natural domain (`[0,1)` for `f64`).
    #[inline]
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// A uniform value from `range`; panics on empty ranges.
    #[inline]
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u32 = rng.random_range(3..10);
            assert!((3..10).contains(&x));
            let y: usize = rng.random_range(5..=5);
            assert_eq!(y, 5);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_values_cover_the_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.random_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
