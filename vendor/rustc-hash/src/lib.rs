//! Offline shim for `rustc-hash`: the Fx multiply-rotate hasher plus the
//! usual `FxHashMap`/`FxHashSet` aliases. Same algorithm family as
//! upstream (rotate-xor-multiply over 8-byte chunks); not guaranteed to
//! produce the identical hash stream, which no user of this workspace
//! relies on.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the upstream Fx hasher.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher: fast, non-cryptographic, DoS-unsafe.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m["a"], 1);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000 {
            s.insert(i * 7);
        }
        assert_eq!(s.len(), 1000);
        assert!(s.contains(&700));
    }

    #[test]
    fn hashing_is_deterministic_and_spread() {
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }
}
