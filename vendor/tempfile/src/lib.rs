//! Offline shim for `tempfile`: unique temporary directories with
//! best-effort recursive cleanup on drop.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::{fs, io};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory under the system temp root, removed recursively on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Persists the directory (disables cleanup) and returns its path.
    pub fn keep(self) -> PathBuf {
        let path = self.path.clone();
        std::mem::forget(self);
        path
    }

    /// Removes the directory now, reporting errors instead of ignoring
    /// them as the `Drop` impl does.
    pub fn close(self) -> io::Result<()> {
        let path = self.path.clone();
        std::mem::forget(self);
        fs::remove_dir_all(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

/// Creates a fresh directory under [`std::env::temp_dir`].
pub fn tempdir() -> io::Result<TempDir> {
    let base = std::env::temp_dir();
    // Process id + monotonic counter + a time component make collisions
    // with concurrent test processes practically impossible; loop anyway.
    for _ in 0..64 {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let name = format!(
            ".tmp-{}-{}-{nanos:x}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed),
        );
        let path = base.join(name);
        match fs::create_dir(&path) {
            Ok(()) => return Ok(TempDir { path }),
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(e),
        }
    }
    Err(io::Error::new(io::ErrorKind::AlreadyExists, "could not create unique temp dir"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_unique_dirs_and_cleans_up() {
        let a = tempdir().unwrap();
        let b = tempdir().unwrap();
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        let kept = a.path().to_path_buf();
        fs::write(kept.join("x"), b"hello").unwrap();
        drop(a);
        assert!(!kept.exists(), "dropped TempDir removes its tree");
        assert!(b.path().is_dir());
    }
}
